//! Automated cliff diagnosis (`marp-trace diagnose`, and the tail end
//! of `marp-trace sweep`).
//!
//! Rule-based detectors over a [`SweepReport`]: each rule inspects the
//! fitted growth exponents and the top-point cost shares, and — when it
//! fires — produces a [`Verdict`] whose evidence cites concrete table
//! rows. Verdicts are ranked by score so the first entry is the best
//! explanation of *why commit cost grows with the replica count*.
//!
//! The rules encode the three ways a MARP cluster is known to fall off
//! a cliff:
//!
//! * **lock-queue convoy** — lock-wait time per commit grows
//!   superlinearly: agents serialize behind ever-longer Locking Lists;
//! * **gossip amplification** — bytes per commit grow superlinearly,
//!   with the anti-entropy / carried-state share called out;
//! * **migration storm** — migrations per commit exceed Theorem 3's
//!   `⌈(N+1)/2⌉ ≤ m ≤ N` bound, i.e. agents tour more than the
//!   protocol's worst case per won lock;
//!
//! plus a generic **superlinear-phase** detector that flags any
//! critical-path phase with a fitted exponent above threshold, so a new
//! kind of blowup still gets named.

use crate::json::Json;
use crate::sweep::SweepReport;
use std::fmt::Write as _;

/// Exponent above which a per-commit metric counts as superlinear
/// (costs that merely track cluster size fit k ≈ 1).
pub const SUPERLINEAR_K: f64 = 1.2;

/// Exponent above which a firing rule escalates to `critical`.
pub const CRITICAL_K: f64 = 1.8;

/// How loud a verdict is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing, not the headline.
    Info,
    /// A real scaling problem.
    Warning,
    /// The dominant explanation of the cliff.
    Critical,
}

impl Severity {
    /// Stable lowercase name (used in text and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One fired rule with its ranked score and cited evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Stable rule identifier.
    pub rule: &'static str,
    /// How loud the finding is.
    pub severity: Severity,
    /// Ranking score (higher = more explanatory).
    pub score: f64,
    /// One-line statement of the finding.
    pub summary: String,
    /// Concrete table rows backing the finding.
    pub evidence: Vec<String>,
}

/// The ranked output of a diagnosis run.
#[derive(Debug, Default, PartialEq)]
pub struct Diagnosis {
    /// Fired rules, highest score first.
    pub verdicts: Vec<Verdict>,
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Per-point evidence row for one phase: value per commit and share of
/// the total.
fn phase_rows(
    report: &SweepReport,
    phase: &str,
    value: fn(&crate::sweep::SweepPoint) -> f64,
) -> Vec<String> {
    report
        .points
        .iter()
        .map(|p| {
            let share = if p.total_ms > 0.0 {
                value(p) / p.total_ms * 100.0
            } else {
                0.0
            };
            format!(
                "n={}: {phase} {:.3} ms/commit ({:.1}% of total)",
                p.n,
                p.per_commit(value(p)),
                share
            )
        })
        .collect()
}

impl Diagnosis {
    /// Run every rule over a sweep.
    pub fn from_sweep(report: &SweepReport) -> Self {
        let mut verdicts = Vec::new();
        lock_queue_convoy(report, &mut verdicts);
        gossip_amplification(report, &mut verdicts);
        migration_storm(report, &mut verdicts);
        superlinear_phases(report, &mut verdicts);
        verdicts.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.rule.cmp(b.rule))
        });
        Diagnosis { verdicts }
    }

    /// Render the ranked verdict list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.verdicts.is_empty() {
            let _ = writeln!(out, "diagnosis: no superlinear cost growth detected");
            return out;
        }
        let _ = writeln!(
            out,
            "diagnosis: {} finding(s), ranked:",
            self.verdicts.len()
        );
        for (rank, v) in self.verdicts.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}. [{}] {} (score {:.3}): {}",
                rank + 1,
                v.severity.name(),
                v.rule,
                v.score,
                v.summary
            );
            for line in &v.evidence {
                let _ = writeln!(out, "     - {line}");
            }
        }
        out
    }

    /// Serialize as deterministic JSON (schema `marp-prof/diagnosis/v1`).
    pub fn to_json(&self) -> Json {
        let verdicts: Vec<Json> = self
            .verdicts
            .iter()
            .map(|v| {
                Json::obj([
                    ("rule", Json::Str(String::from(v.rule))),
                    ("severity", Json::Str(String::from(v.severity.name()))),
                    ("score", Json::Num(v.score)),
                    ("summary", Json::Str(v.summary.clone())),
                    (
                        "evidence",
                        Json::Arr(v.evidence.iter().map(|e| Json::Str(e.clone())).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(String::from("marp-prof/diagnosis/v1"))),
            ("verdicts", Json::Arr(verdicts)),
        ])
    }
}

fn severity_for(k: f64) -> Severity {
    if k > CRITICAL_K {
        Severity::Critical
    } else {
        Severity::Warning
    }
}

fn lock_queue_convoy(report: &SweepReport, out: &mut Vec<Verdict>) {
    let Some(k) = report.exponent("lock-wait-ms") else {
        return;
    };
    if k <= SUPERLINEAR_K {
        return;
    }
    let top_share = report
        .top_point()
        .filter(|p| p.total_ms > 0.0)
        .map(|p| p.lock_wait_ms / p.total_ms)
        .unwrap_or(0.0);
    let mut evidence = phase_rows(report, "lock-wait", |p| p.lock_wait_ms);
    evidence.push(format!(
        "fitted exponent k={k:.4} (superlinear above {SUPERLINEAR_K})"
    ));
    out.push(Verdict {
        rule: "lock-queue-convoy",
        severity: severity_for(k),
        score: round3(k * (1.0 + top_share)),
        summary: format!(
            "lock-wait per commit grows as n^{k:.2} and is {:.1}% of commit latency at n={}: \
             agents convoy behind growing Locking List queues",
            top_share * 100.0,
            report.top_point().map(|p| p.n).unwrap_or(0)
        ),
        evidence,
    });
}

fn gossip_amplification(report: &SweepReport, out: &mut Vec<Verdict>) {
    let Some(k) = report.exponent("bytes") else {
        return;
    };
    if k <= SUPERLINEAR_K {
        return;
    }
    let mut evidence: Vec<String> = report
        .points
        .iter()
        .map(|p| {
            format!(
                "n={}: {:.0} bytes/commit ({:.0} migrated-state, {:.0} gossip, {:.1} LT entries/migration)",
                p.n,
                p.per_commit(p.total_bytes as f64),
                p.per_commit(p.migrated_bytes as f64),
                p.per_commit(p.gossip_bytes as f64),
                if p.migrations == 0 {
                    0.0
                } else {
                    p.lt_entries_carried as f64 / p.migrations as f64
                }
            )
        })
        .collect();
    evidence.push(format!(
        "fitted exponent k={k:.4} (superlinear above {SUPERLINEAR_K})"
    ));
    if let Some(k_lt) = report.exponent("lt-entries") {
        evidence.push(format!("carried LT entries per commit grow as n^{k_lt:.4}"));
    }
    out.push(Verdict {
        rule: "gossip-amplification",
        severity: severity_for(k),
        score: round3(k),
        summary: format!(
            "wire bytes per commit grow as n^{k:.2}: carried locking state and \
             reconciliation traffic amplify with every added replica"
        ),
        evidence,
    });
}

fn migration_storm(report: &SweepReport, out: &mut Vec<Verdict>) {
    let Some(top) = report.top_point().filter(|p| p.commits > 0) else {
        return;
    };
    // Theorem 3: a winning agent migrates between ⌈(N+1)/2⌉ and N times.
    let bound_hi = top.n as f64;
    let bound_lo = ((top.n + 1) as f64 / 2.0).ceil();
    let per_commit = top.migrations as f64 / top.commits as f64;
    let k = report.exponent("migrations");
    let exceeds = per_commit > bound_hi;
    let superlinear = k.is_some_and(|k| k > SUPERLINEAR_K);
    if !exceeds && !superlinear {
        return;
    }
    let mut evidence: Vec<String> = report
        .points
        .iter()
        .filter(|p| p.commits > 0)
        .map(|p| {
            format!(
                "n={}: {:.2} migrations/commit (Theorem 3 bound: {:.0}..{:.0} per won lock)",
                p.n,
                p.migrations as f64 / p.commits as f64,
                ((p.n + 1) as f64 / 2.0).ceil(),
                p.n as f64
            )
        })
        .collect();
    if let Some(k) = k {
        evidence.push(format!("fitted exponent k={k:.4}"));
    }
    out.push(Verdict {
        rule: "migration-storm",
        severity: if exceeds {
            Severity::Critical
        } else {
            Severity::Warning
        },
        score: round3(per_commit / bound_hi + k.unwrap_or(0.0)),
        summary: if exceeds {
            format!(
                "{per_commit:.2} migrations per commit at n={} exceeds Theorem 3's upper bound \
                 of {bound_hi:.0}: agents re-tour (aborted claims / regenerations) before winning",
                top.n
            )
        } else {
            format!(
                "migrations per commit grow superlinearly (within Theorem 3's \
                 {bound_lo:.0}..{bound_hi:.0} bound at n={}, but trending out of it)",
                top.n
            )
        },
        evidence,
    });
}

fn superlinear_phases(report: &SweepReport, out: &mut Vec<Verdict>) {
    const PHASES: &[(&str, &str, crate::sweep::MetricFn)] = &[
        ("queueing-ms", "queueing", |p| p.queueing_ms),
        ("network-ms", "network", |p| p.network_ms),
        ("lock-wait-ms", "lock-wait", |p| p.lock_wait_ms),
        ("quorum-wait-ms", "quorum-wait", |p| p.quorum_wait_ms),
    ];
    for &(metric, phase, value) in PHASES {
        let Some(k) = report.exponent(metric) else {
            continue;
        };
        if k <= SUPERLINEAR_K {
            continue;
        }
        let mut evidence = phase_rows(report, phase, value);
        evidence.push(format!(
            "fitted exponent k={k:.4} (superlinear above {SUPERLINEAR_K})"
        ));
        out.push(Verdict {
            rule: "superlinear-phase",
            severity: Severity::Info,
            score: round3(k / 2.0),
            summary: format!("the {phase} phase grows as n^{k:.2} per commit"),
            evidence,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPoint;

    /// A sweep whose lock-wait dominates and grows with `power`, while
    /// the other phases stay linear.
    fn convoy_sweep(power: f64) -> SweepReport {
        let point = |n: usize| {
            let v = (n as f64).powf(power);
            let linear = n as f64;
            SweepPoint {
                n,
                seeds: vec![1, 2],
                commits: 100,
                total_ms: 100.0 * v + 300.0 * linear,
                queueing_ms: 100.0 * linear,
                network_ms: 100.0 * linear,
                lock_wait_ms: 100.0 * v,
                quorum_wait_ms: 100.0 * linear,
                migrations: 100 * n as u64, // within Theorem 3's bound
                migrated_bytes: (1000.0 * linear) as u64,
                gossip_bytes: (100.0 * linear) as u64,
                total_bytes: (2000.0 * linear) as u64,
                messages: (50.0 * linear) as u64,
                lt_entries_carried: (20.0 * linear) as u64,
            }
        };
        SweepReport::new(vec![point(3), point(5), point(9)])
    }

    #[test]
    fn convoy_is_detected_and_ranked_first() {
        let diagnosis = Diagnosis::from_sweep(&convoy_sweep(2.5));
        assert!(!diagnosis.verdicts.is_empty());
        assert_eq!(diagnosis.verdicts[0].rule, "lock-queue-convoy");
        assert!(diagnosis.verdicts[0].score >= 1.0);
        assert!(diagnosis.verdicts[0]
            .evidence
            .iter()
            .any(|e| e.starts_with("n=9:")));
        // The generic detector also names the phase.
        assert!(diagnosis
            .verdicts
            .iter()
            .any(|v| v.rule == "superlinear-phase" && v.summary.contains("lock-wait")));
    }

    #[test]
    fn linear_sweep_is_clean() {
        let diagnosis = Diagnosis::from_sweep(&convoy_sweep(1.0));
        assert!(diagnosis.verdicts.is_empty());
        assert!(diagnosis.render().contains("no superlinear cost growth"));
    }

    #[test]
    fn migration_storm_fires_past_theorem3_bound() {
        let mut report = convoy_sweep(1.0);
        for p in &mut report.points {
            p.migrations = p.commits * (p.n as u64 + 3); // > N per commit
        }
        let diagnosis = Diagnosis::from_sweep(&report);
        let storm = diagnosis
            .verdicts
            .iter()
            .find(|v| v.rule == "migration-storm")
            .expect("storm rule should fire");
        assert_eq!(storm.severity, Severity::Critical);
        assert!(storm.summary.contains("Theorem 3"));
        assert!(storm.evidence.iter().any(|e| e.contains("bound: 5..9")));
    }

    #[test]
    fn gossip_amplification_cites_byte_rows() {
        let mut report = convoy_sweep(1.0);
        for p in &mut report.points {
            p.total_bytes = (2000.0 * (p.n as f64).powf(2.2)) as u64;
        }
        let diagnosis = Diagnosis::from_sweep(&report);
        let gossip = diagnosis
            .verdicts
            .iter()
            .find(|v| v.rule == "gossip-amplification")
            .expect("gossip rule should fire");
        assert!(gossip.evidence.iter().any(|e| e.contains("bytes/commit")));
    }

    #[test]
    fn json_schema_is_stable_and_parses() {
        let diagnosis = Diagnosis::from_sweep(&convoy_sweep(2.0));
        let text = diagnosis.to_json().render();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("marp-prof/diagnosis/v1")
        );
        assert!(doc.get("verdicts").and_then(Json::as_arr).is_some());
        assert_eq!(diagnosis.to_json().render(), text);
    }
}
