//! A minimal JSON value type with an emitter and parser.
//!
//! The workspace has no serde; the Perfetto exporter needs to *write*
//! JSON and the `marp-trace validate` command needs to *read back* what
//! it wrote. This covers exactly the JSON subset those two produce:
//! objects, arrays, strings with basic escapes, finite numbers, bools,
//! and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), which also makes emitted
    /// JSON deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        if let Json::Obj(map) = self {
            map.get(key)
        } else {
            None
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        if let Json::Arr(items) = self {
            Some(items)
        } else {
            None
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        if let Json::Str(s) = self {
            Some(s)
        } else {
            None
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        if let Json::Num(n) = self {
            Some(*n)
        } else {
            None
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // Integers print without a trailing ".0" (Perfetto wants
                // plain integer pids/tids); everything else as shortest f64.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns an error message with a byte
    /// offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(what), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&first) = bytes.get(*pos) else {
        return Err(String::from("unexpected end of input"));
    };
    match first {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_keyword(bytes, pos, "null", Json::Null),
        other if other == b'-' || other.is_ascii_digit() => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected character '{}' at byte {}",
            char::from(other),
            *pos
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes[*pos] == b'-' {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|err| format!("bad number '{text}' at byte {start}: {err}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(String::from("unterminated string"));
        };
        *pos += 1;
        match byte {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(String::from("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| String::from("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|err| format!("bad \\u escape: {err}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "unknown escape '\\{}' at byte {}",
                            char::from(other),
                            *pos
                        ))
                    }
                }
            }
            ascii if ascii < 0x80 => out.push(char::from(ascii)),
            lead => {
                // Multi-byte UTF-8: re-decode from the lead byte.
                let width = utf8_width(lead);
                let chunk = bytes
                    .get(*pos - 1..*pos - 1 + width)
                    .ok_or_else(|| String::from("truncated utf-8 sequence"))?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|err| format!("invalid utf-8 in string: {err}"))?;
                out.push_str(s);
                *pos += width - 1;
            }
        }
    }
}

fn utf8_width(lead: u8) -> usize {
    if lead >= 0xf0 {
        4
    } else if lead >= 0xe0 {
        3
    } else {
        2
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {}, got {other:?}",
                    *pos
                ))
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, got {other:?}",
                    *pos
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Json::obj([
            ("name", Json::Str(String::from("migrate \"hop\"\n"))),
            ("ts", Json::Num(1234.5)),
            ("pid", Json::Num(1.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "args",
                Json::Arr(vec![Json::Num(-3.0), Json::Str(String::from("µs"))]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(5.0).render(), "5");
        assert_eq!(Json::Num(5.25).render(), "5.25");
        assert_eq!(Json::Num(-2.0).render(), "-2");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{}{}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("xA")
        );
    }
}
