//! Flamegraph-style span aggregation (`marp-trace aggregate`).
//!
//! Folds a trace's reconstructed span trees into a deterministic
//! profile: for every root-to-span *kind path* (e.g.
//! `dispatch;migrate`), the number of spans, inclusive and exclusive
//! time, and the serialized agent-state bytes shipped while that span
//! was the active migration. The same stats are also grouped per
//! emitting node and per agent, so a scale sweep can say not just
//! *which phase* grew but *where*.
//!
//! All times are integer nanoseconds of virtual time and every map is a
//! `BTreeMap`, so two aggregations of the same trace render
//! byte-identical text and JSON — the property the golden tests pin.

use crate::json::Json;
use crate::spans::SpanSet;
use marp_sim::{SpanKind, TraceEvent, TraceLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one kind path (or one `(node, path)` /
/// `(agent, path)` cell).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Spans folded into this cell.
    pub count: u64,
    /// Spans that never closed (counted, but contribute zero time).
    pub open: u64,
    /// Total inclusive time (span duration), ns.
    pub incl_ns: u64,
    /// Inclusive time minus child span time (clamped at zero), ns.
    pub excl_ns: u64,
    /// Serialized agent-state bytes attributed to this cell.
    pub bytes: u64,
}

impl PathStats {
    fn fold(&mut self, incl_ns: u64, excl_ns: u64, open: bool) {
        self.count += 1;
        self.open += u64::from(open);
        self.incl_ns += incl_ns;
        self.excl_ns += excl_ns;
    }
}

/// A full profile of one trace.
#[derive(Debug, Default, PartialEq)]
pub struct Profile {
    /// Stats per kind path, e.g. `"dispatch;migrate"`.
    pub by_path: BTreeMap<String, PathStats>,
    /// Stats per `(start node, kind path)`.
    pub by_node: BTreeMap<(u32, String), PathStats>,
    /// Stats per `(agent key, kind path)`, agent-anchored kinds only.
    pub by_agent: BTreeMap<(u64, String), PathStats>,
    /// Sum of root-span inclusive time, ns.
    pub total_ns: u64,
    /// `SpanEnd` records without a matching start.
    pub unmatched_ends: u64,
}

/// Stable ordering rank for a span kind inside sibling paths; also the
/// exhaustive `SpanKind` match the analyzer pins to this module, so a
/// new phase kind fails the profiler build until it is ranked here.
fn kind_rank(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::Request => 0,
        SpanKind::Dispatch => 1,
        SpanKind::Migrate => 2,
        SpanKind::LockAcquire => 3,
        SpanKind::UpdateQuorum => 4,
        SpanKind::Commit => 5,
        SpanKind::Read => 6,
    }
}

/// True when the span's `a` value is an agent key (agent-anchored
/// phases) rather than a request id.
fn agent_anchored(kind: SpanKind) -> bool {
    kind_rank(kind) >= kind_rank(SpanKind::Dispatch) && kind != SpanKind::Read
}

impl Profile {
    /// Aggregate a recorded trace.
    pub fn from_trace(trace: &TraceLog) -> Self {
        let set = SpanSet::from_trace(trace);
        let spans = set.spans();

        // Root-to-span kind path per span, memoized over the parent
        // chain. Spans sit in trace order so a parent's path is always
        // computed before its children's; a dangling parent id (trace
        // truncated before the parent's start, or a child emitted ahead
        // of its parent) makes the span its own root.
        let index: std::collections::HashMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(idx, s)| (s.id, idx))
            .collect();
        let mut paths: Vec<String> = Vec::with_capacity(spans.len());
        for (idx, span) in spans.iter().enumerate() {
            let path = match index.get(&span.parent) {
                Some(&parent_idx) if parent_idx < idx => {
                    format!("{};{}", paths[parent_idx], span.kind.name())
                }
                Some(_) | None => String::from(span.kind.name()),
            };
            paths.push(path);
        }

        // Inclusive minus direct-child time, clamped: children may
        // overlap or outlive the parent (cross-node clock of one
        // simulation is shared, but spans can be left open).
        let mut profile = Profile {
            unmatched_ends: set.unmatched_ends,
            ..Profile::default()
        };
        for (idx, span) in spans.iter().enumerate() {
            let incl = span
                .end
                .map(|end| end.as_nanos().saturating_sub(span.start.as_nanos()))
                .unwrap_or(0);
            let child_time: u64 = set
                .children_of(span.id)
                .filter_map(|c| {
                    c.end
                        .map(|end| end.as_nanos().saturating_sub(c.start.as_nanos()))
                })
                .sum();
            let excl = incl.saturating_sub(child_time);
            let open = span.end.is_none();
            let path = &paths[idx];
            profile
                .by_path
                .entry(path.clone())
                .or_default()
                .fold(incl, excl, open);
            profile
                .by_node
                .entry((u32::from(span.start_node), path.clone()))
                .or_default()
                .fold(incl, excl, open);
            if agent_anchored(span.kind) {
                profile
                    .by_agent
                    .entry((span.a, path.clone()))
                    .or_default()
                    .fold(incl, excl, open);
            }
            if span.parent == 0 || set.get(span.parent).is_none() {
                profile.total_ns += incl;
            }
        }

        // Byte attribution: each shipped agent state belongs to the
        // migration span of the same agent with the greatest start time
        // not after the shipment (`begin_migration` emits the shipment
        // and the span start at the same instant; retries re-ship into
        // the still-open span). With no migration span yet, the bytes
        // land on the agent's dispatch span path.
        let mut agent_spans: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, span) in spans.iter().enumerate() {
            if matches!(span.kind, SpanKind::Migrate | SpanKind::Dispatch) {
                agent_spans.entry(span.a).or_default().push(idx);
            }
        }
        for rec in trace.records() {
            let (agent, bytes) = match rec.event {
                TraceEvent::AgentStateShipped { agent, bytes } => (agent, bytes as u64),
                TraceEvent::MsgSent { .. }
                | TraceEvent::MsgDelivered { .. }
                | TraceEvent::MsgDropped { .. }
                | TraceEvent::NodeDown(..)
                | TraceEvent::NodeUp(..)
                | TraceEvent::RequestArrived { .. }
                | TraceEvent::ReadServed { .. }
                | TraceEvent::AgentDispatched { .. }
                | TraceEvent::AgentMigrated { .. }
                | TraceEvent::AgentMigrateFailed { .. }
                | TraceEvent::ReplicaDeclaredUnavailable { .. }
                | TraceEvent::LockRequested { .. }
                | TraceEvent::LockGranted { .. }
                | TraceEvent::UpdateSent { .. }
                | TraceEvent::UpdateAcked { .. }
                | TraceEvent::WinAborted { .. }
                | TraceEvent::CommitApplied { .. }
                | TraceEvent::AgentDisposed { .. }
                | TraceEvent::UpdateCompleted { .. }
                | TraceEvent::SpanStart { .. }
                | TraceEvent::SpanEnd { .. }
                | TraceEvent::SpanLink { .. }
                | TraceEvent::Custom { .. } => continue,
            };
            let target = agent_spans
                .get(&agent)
                .into_iter()
                .flatten()
                .map(|&idx| (idx, &spans[idx]))
                .filter(|(_, s)| s.start <= rec.at)
                // Any migration beats the dispatch root; among
                // migrations, the latest-started one wins.
                .max_by_key(|(idx, s)| (kind_rank(s.kind), s.start, *idx));
            let Some((idx, span)) = target else {
                continue;
            };
            let path = &paths[idx];
            profile.by_path.entry(path.clone()).or_default().bytes += bytes;
            profile
                .by_node
                .entry((u32::from(span.start_node), path.clone()))
                .or_default()
                .bytes += bytes;
            profile
                .by_agent
                .entry((agent, path.clone()))
                .or_default()
                .bytes += bytes;
        }

        profile
    }

    /// Sum of exclusive time across all paths, ns.
    pub fn total_excl_ns(&self) -> u64 {
        self.by_path.values().map(|s| s.excl_ns).sum()
    }

    /// Collapsed-stack text (`path value` per line, value = exclusive
    /// microseconds), the format flamegraph tooling consumes. Lines are
    /// sorted by path.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.by_path {
            let _ = writeln!(out, "{path} {}", stats.excl_ns / 1_000);
        }
        out
    }

    /// Human-readable table: paths sorted by exclusive time descending
    /// (ties broken by path), then the per-node rollup.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<48} {:>7} {:>5} {:>12} {:>12} {:>12}",
            "path", "count", "open", "incl_ms", "excl_ms", "bytes"
        );
        let mut rows: Vec<(&String, &PathStats)> = self.by_path.iter().collect();
        rows.sort_by(|(pa, sa), (pb, sb)| sb.excl_ns.cmp(&sa.excl_ns).then(pa.cmp(pb)));
        for (path, s) in rows {
            let _ = writeln!(
                out,
                "{:<48} {:>7} {:>5} {:>12.3} {:>12.3} {:>12}",
                path,
                s.count,
                s.open,
                s.incl_ns as f64 / 1e6,
                s.excl_ns as f64 / 1e6,
                s.bytes
            );
        }
        let _ = writeln!(
            out,
            "\ntotal {:.3} ms root time, {:.3} ms exclusive across {} path(s), {} unmatched end(s)",
            self.total_ns as f64 / 1e6,
            self.total_excl_ns() as f64 / 1e6,
            self.by_path.len(),
            self.unmatched_ends
        );
        let mut nodes: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for (&(node, _), s) in &self.by_node {
            let cell = nodes.entry(node).or_default();
            cell.0 += s.excl_ns;
            cell.1 += s.bytes;
        }
        for (node, (excl, bytes)) in nodes {
            let _ = writeln!(
                out,
                "node {node}: {:.3} ms exclusive, {bytes} bytes shipped",
                excl as f64 / 1e6
            );
        }
        out
    }

    /// Serialize as deterministic JSON (schema `marp-prof/profile/v1`).
    pub fn to_json(&self) -> Json {
        let stats_obj = |s: &PathStats| {
            Json::obj([
                ("count", Json::Num(s.count as f64)),
                ("open", Json::Num(s.open as f64)),
                ("incl_ns", Json::Num(s.incl_ns as f64)),
                ("excl_ns", Json::Num(s.excl_ns as f64)),
                ("bytes", Json::Num(s.bytes as f64)),
            ])
        };
        let by_path: BTreeMap<String, Json> = self
            .by_path
            .iter()
            .map(|(path, s)| (path.clone(), stats_obj(s)))
            .collect();
        let by_node: BTreeMap<String, Json> = self
            .by_node
            .iter()
            .map(|((node, path), s)| (format!("{node}|{path}"), stats_obj(s)))
            .collect();
        let by_agent: BTreeMap<String, Json> = self
            .by_agent
            .iter()
            .map(|((agent, path), s)| (format!("{agent}|{path}"), stats_obj(s)))
            .collect();
        Json::obj([
            ("schema", Json::Str(String::from("marp-prof/profile/v1"))),
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("unmatched_ends", Json::Num(self.unmatched_ends as f64)),
            ("by_path", Json::Obj(by_path)),
            ("by_node", Json::Obj(by_node)),
            ("by_agent", Json::Obj(by_agent)),
        ])
    }

    /// Parse a profile back from its JSON form (for `marp-trace diff`).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        if doc.get("schema").and_then(Json::as_str) != Some("marp-prof/profile/v1") {
            return Err(String::from("not a marp-prof/profile/v1 document"));
        }
        let num = |j: &Json, field: &str| -> Result<u64, String> {
            j.get(field)
                .and_then(Json::as_num)
                .map(|v| v as u64)
                .ok_or_else(|| format!("missing numeric field '{field}'"))
        };
        let stats = |j: &Json| -> Result<PathStats, String> {
            Ok(PathStats {
                count: num(j, "count")?,
                open: num(j, "open")?,
                incl_ns: num(j, "incl_ns")?,
                excl_ns: num(j, "excl_ns")?,
                bytes: num(j, "bytes")?,
            })
        };
        let obj_of = |field: &str| -> Result<BTreeMap<String, Json>, String> {
            match doc.get(field) {
                Some(Json::Obj(map)) => Ok(map.clone()),
                Some(Json::Null) | Some(Json::Bool(..)) | Some(Json::Num(..))
                | Some(Json::Str(..)) | Some(Json::Arr(..)) | None => {
                    Err(format!("missing object field '{field}'"))
                }
            }
        };
        let mut profile = Profile {
            total_ns: num(doc, "total_ns")?,
            unmatched_ends: num(doc, "unmatched_ends")?,
            ..Profile::default()
        };
        for (path, j) in obj_of("by_path")? {
            profile.by_path.insert(path, stats(&j)?);
        }
        for (key, j) in obj_of("by_node")? {
            let (node, path) = key
                .split_once('|')
                .ok_or_else(|| format!("bad by_node key '{key}'"))?;
            let node: u32 = node.parse().map_err(|_| format!("bad node id '{node}'"))?;
            profile
                .by_node
                .insert((node, String::from(path)), stats(&j)?);
        }
        for (key, j) in obj_of("by_agent")? {
            let (agent, path) = key
                .split_once('|')
                .ok_or_else(|| format!("bad by_agent key '{key}'"))?;
            let agent: u64 = agent
                .parse()
                .map_err(|_| format!("bad agent key '{agent}'"))?;
            profile
                .by_agent
                .insert((agent, String::from(path)), stats(&j)?);
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, NodeId, SimTime, SpanId, TraceLevel};

    fn start(
        log: &mut TraceLog,
        at: u64,
        node: NodeId,
        kind: SpanKind,
        a: u64,
        b: u64,
        parent: SpanId,
    ) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanStart {
                id: span_id(kind, a, b),
                parent,
                kind,
                a,
                b,
            },
        );
    }

    fn end(log: &mut TraceLog, at: u64, node: NodeId, kind: SpanKind, a: u64, b: u64) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanEnd {
                id: span_id(kind, a, b),
                kind,
            },
        );
    }

    /// One dispatch (0..10ms) with a migrate child (2..5ms).
    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        let agent = 7u64;
        let dispatch = span_id(SpanKind::Dispatch, agent, 0);
        start(&mut log, 0, 0, SpanKind::Dispatch, agent, 0, 0);
        log.push(
            SimTime::from_millis(2),
            0,
            TraceEvent::AgentStateShipped { agent, bytes: 100 },
        );
        start(
            &mut log,
            2,
            0,
            SpanKind::Migrate,
            agent,
            (1 << 32) | 1,
            dispatch,
        );
        end(&mut log, 5, 1, SpanKind::Migrate, agent, (1 << 32) | 1);
        end(&mut log, 10, 1, SpanKind::Dispatch, agent, 0);
        log
    }

    #[test]
    fn inclusive_exclusive_and_paths() {
        let profile = Profile::from_trace(&sample_log());
        let dispatch = &profile.by_path["dispatch"];
        assert_eq!(dispatch.count, 1);
        assert_eq!(dispatch.incl_ns, 10_000_000);
        assert_eq!(dispatch.excl_ns, 7_000_000);
        let migrate = &profile.by_path["dispatch;migrate"];
        assert_eq!(migrate.incl_ns, 3_000_000);
        assert_eq!(migrate.excl_ns, 3_000_000);
        assert_eq!(profile.total_ns, 10_000_000);
        assert_eq!(profile.total_excl_ns(), 10_000_000);
    }

    #[test]
    fn shipped_bytes_attach_to_the_active_migration() {
        let profile = Profile::from_trace(&sample_log());
        // The shipment at t=2 belongs to the migration opened at t=2,
        // not the enclosing dispatch.
        assert_eq!(profile.by_path["dispatch;migrate"].bytes, 100);
        assert_eq!(profile.by_path["dispatch"].bytes, 0);
        assert_eq!(
            profile.by_agent[&(7, String::from("dispatch;migrate"))].bytes,
            100
        );
    }

    #[test]
    fn json_roundtrip_is_lossless_and_deterministic() {
        let profile = Profile::from_trace(&sample_log());
        let text = profile.to_json().render();
        let back = Profile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, profile);
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn collapsed_output_is_sorted_and_in_microseconds() {
        let collapsed = Profile::from_trace(&sample_log()).collapsed();
        assert_eq!(collapsed, "dispatch 7000\ndispatch;migrate 3000\n");
    }

    #[test]
    fn open_spans_count_but_contribute_no_time() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        start(&mut log, 0, 0, SpanKind::Request, 1, 0, 0);
        let profile = Profile::from_trace(&log);
        let request = &profile.by_path["request"];
        assert_eq!(request.count, 1);
        assert_eq!(request.open, 1);
        assert_eq!(request.incl_ns, 0);
    }
}
