//! Span-tree reconstruction from a recorded trace.
//!
//! The protocol crates emit [`TraceEvent::SpanStart`] / [`TraceEvent::SpanEnd`]
//! pairs whose ids are derived deterministically from semantic identity
//! (see [`marp_sim::span_id`]), so the two halves of a span may come from
//! different nodes. This module stitches them back into [`Span`] records
//! and indexes the parent/child and link edges for the exporters and the
//! critical-path analyzer.

use marp_sim::{NodeId, SimTime, SpanId, SpanKind, TraceEvent, TraceLog};
use std::collections::HashMap;

/// One reconstructed causal span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span identity (see [`marp_sim::span_id`]).
    pub id: SpanId,
    /// Enclosing span, 0 for a root.
    pub parent: SpanId,
    /// Phase of the write this span covers.
    pub kind: SpanKind,
    /// First identity value (agent key or request id).
    pub a: u64,
    /// Second identity value (kind-specific).
    pub b: u64,
    /// When (and where) the span opened.
    pub start: SimTime,
    /// Node that emitted the start.
    pub start_node: NodeId,
    /// When the span closed, if it did.
    pub end: Option<SimTime>,
    /// Node that emitted the end, if any.
    pub end_node: Option<NodeId>,
}

impl Span {
    /// Duration in virtual milliseconds, if the span completed.
    pub fn duration_ms(&self) -> Option<f64> {
        self.end
            .map(|end| end.as_millis_f64() - self.start.as_millis_f64())
    }
}

/// All spans of one run, with the link edges between them.
#[derive(Debug, Default)]
pub struct SpanSet {
    spans: Vec<Span>,
    by_id: HashMap<SpanId, usize>,
    children: HashMap<SpanId, Vec<usize>>,
    links: Vec<(SpanId, SpanId)>,
    /// `SpanEnd` records whose start was never seen (e.g. the trace was
    /// truncated, or a duplicate end from a disposed clone).
    pub unmatched_ends: u64,
}

impl SpanSet {
    /// Reconstruct every span from the trace. A duplicate `SpanStart`
    /// for an id keeps the first occurrence; a duplicate `SpanEnd`
    /// keeps the first close (later ones count as unmatched).
    pub fn from_trace(trace: &TraceLog) -> Self {
        let mut set = SpanSet::default();
        for rec in trace.records() {
            match rec.event {
                TraceEvent::SpanStart {
                    id,
                    parent,
                    kind,
                    a,
                    b,
                } => {
                    if set.by_id.contains_key(&id) {
                        continue;
                    }
                    let idx = set.spans.len();
                    set.by_id.insert(id, idx);
                    set.children.entry(parent).or_default().push(idx);
                    set.spans.push(Span {
                        id,
                        parent,
                        kind,
                        a,
                        b,
                        start: rec.at,
                        start_node: rec.node,
                        end: None,
                        end_node: None,
                    });
                }
                TraceEvent::SpanEnd { id, kind: _ } => match set.by_id.get(&id) {
                    Some(&idx) if set.spans[idx].end.is_none() => {
                        set.spans[idx].end = Some(rec.at);
                        set.spans[idx].end_node = Some(rec.node);
                    }
                    Some(&_idx) => set.unmatched_ends += 1,
                    None => set.unmatched_ends += 1,
                },
                TraceEvent::SpanLink { from, to } => set.links.push((from, to)),
                TraceEvent::MsgSent { .. }
                | TraceEvent::MsgDelivered { .. }
                | TraceEvent::MsgDropped { .. }
                | TraceEvent::NodeDown(..)
                | TraceEvent::NodeUp(..)
                | TraceEvent::RequestArrived { .. }
                | TraceEvent::ReadServed { .. }
                | TraceEvent::AgentDispatched { .. }
                | TraceEvent::AgentMigrated { .. }
                | TraceEvent::AgentMigrateFailed { .. }
                | TraceEvent::AgentStateShipped { .. }
                | TraceEvent::ReplicaDeclaredUnavailable { .. }
                | TraceEvent::LockRequested { .. }
                | TraceEvent::LockGranted { .. }
                | TraceEvent::UpdateSent { .. }
                | TraceEvent::UpdateAcked { .. }
                | TraceEvent::WinAborted { .. }
                | TraceEvent::CommitApplied { .. }
                | TraceEvent::AgentDisposed { .. }
                | TraceEvent::UpdateCompleted { .. }
                | TraceEvent::Custom { .. } => {}
            }
        }
        set
    }

    /// All spans in start order (trace emission order).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Look a span up by id.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.by_id.get(&id).map(|&idx| &self.spans[idx])
    }

    /// Direct children of a span (spans whose `parent` is `id`).
    pub fn children_of(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.children
            .get(&id)
            .into_iter()
            .flatten()
            .map(|&idx| &self.spans[idx])
    }

    /// All link edges `(from, to)` in emission order.
    pub fn links(&self) -> &[(SpanId, SpanId)] {
        &self.links
    }

    /// Targets of links whose source is `from`.
    pub fn linked_from(&self, from: SpanId) -> impl Iterator<Item = SpanId> + '_ {
        self.links
            .iter()
            .filter(move |&&(f, _)| f == from)
            .map(|&(_, t)| t)
    }

    /// Spans that both opened and closed.
    pub fn complete(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.end.is_some())
    }

    /// Spans that never closed.
    pub fn incomplete(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.end.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, TraceLevel};

    fn push_start(
        log: &mut TraceLog,
        at: u64,
        node: NodeId,
        kind: SpanKind,
        a: u64,
        b: u64,
        parent: SpanId,
    ) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanStart {
                id: span_id(kind, a, b),
                parent,
                kind,
                a,
                b,
            },
        );
    }

    fn push_end(log: &mut TraceLog, at: u64, node: NodeId, kind: SpanKind, a: u64, b: u64) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanEnd {
                id: span_id(kind, a, b),
                kind,
            },
        );
    }

    #[test]
    fn cross_node_halves_are_stitched() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        push_start(&mut log, 1, 0, SpanKind::Migrate, 7, 1, 0);
        push_end(&mut log, 5, 3, SpanKind::Migrate, 7, 1);
        let set = SpanSet::from_trace(&log);
        assert_eq!(set.spans().len(), 1);
        let span = &set.spans()[0];
        assert_eq!(span.start_node, 0);
        assert_eq!(span.end_node, Some(3));
        assert_eq!(span.duration_ms(), Some(4.0));
        assert_eq!(set.unmatched_ends, 0);
    }

    #[test]
    fn duplicate_ends_and_orphan_ends_are_tolerated() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        push_start(&mut log, 1, 0, SpanKind::Dispatch, 9, 0, 0);
        push_end(&mut log, 2, 0, SpanKind::Dispatch, 9, 0);
        push_end(&mut log, 3, 1, SpanKind::Dispatch, 9, 0); // zombie clone
        push_end(&mut log, 4, 1, SpanKind::Commit, 1, 1); // never started
        let set = SpanSet::from_trace(&log);
        assert_eq!(set.spans().len(), 1);
        assert_eq!(set.spans()[0].end, Some(SimTime::from_millis(2)));
        assert_eq!(set.unmatched_ends, 2);
    }

    #[test]
    fn children_and_links_are_indexed() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        let dispatch = span_id(SpanKind::Dispatch, 5, 0);
        push_start(&mut log, 0, 0, SpanKind::Request, 100, 0, 0);
        push_start(&mut log, 1, 0, SpanKind::Dispatch, 5, 0, 0);
        log.push(
            SimTime::from_millis(1),
            0,
            TraceEvent::SpanLink {
                from: span_id(SpanKind::Request, 100, 0),
                to: dispatch,
            },
        );
        push_start(&mut log, 2, 0, SpanKind::Migrate, 5, 1, dispatch);
        push_start(&mut log, 2, 0, SpanKind::LockAcquire, 5, 1, dispatch);
        let set = SpanSet::from_trace(&log);
        assert_eq!(set.children_of(dispatch).count(), 2);
        let linked: Vec<SpanId> = set
            .linked_from(span_id(SpanKind::Request, 100, 0))
            .collect();
        assert_eq!(linked, vec![dispatch]);
        assert_eq!(set.complete().count(), 0);
        assert_eq!(set.incomplete().count(), 4);
    }
}
