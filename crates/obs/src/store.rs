//! Binary trace files.
//!
//! A recorded [`TraceLog`] can be written to disk and read back by the
//! `marp-trace` CLI. The format is the workspace wire encoding: a magic
//! header, a record count, then each record as `(at, node, event)` with
//! a one-byte event tag in declaration order. [`TraceEvent`] lives in
//! `marp-sim` and [`marp_wire::Wire`] in `marp-wire`, so the encoding is
//! spelled out here as free functions rather than a trait impl.

use bytes::{Buf, Bytes, BytesMut};
use marp_sim::{SimTime, TraceEvent, TraceLevel, TraceLog, TraceRecord};
use marp_wire::{Wire, WireError};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// File magic: "MARPTRC" + format version.
pub const MAGIC: &[u8; 8] = b"MARPTRC1";

/// The trace events carry `&'static str` labels. Decoding a file brings
/// them back as owned strings; this interner hands out `'static`
/// references, leaking one allocation per *distinct* label (labels are
/// compile-time constants in practice, so the set is tiny).
fn intern(label: String) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = INTERNED
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("interner poisoned");
    if let Some(&stored) = map.get(&label) {
        return stored;
    }
    let leaked: &'static str = Box::leak(label.clone().into_boxed_str());
    map.insert(label, leaked);
    leaked
}

fn encode_event(event: &TraceEvent, buf: &mut BytesMut) {
    match event {
        TraceEvent::MsgSent { from, to, bytes } => {
            0u8.encode(buf);
            from.encode(buf);
            to.encode(buf);
            bytes.encode(buf);
        }
        TraceEvent::MsgDelivered { from, to, bytes } => {
            1u8.encode(buf);
            from.encode(buf);
            to.encode(buf);
            bytes.encode(buf);
        }
        TraceEvent::MsgDropped { from, to, reason } => {
            2u8.encode(buf);
            from.encode(buf);
            to.encode(buf);
            (*reason).to_string().encode(buf);
        }
        TraceEvent::NodeDown(node) => {
            3u8.encode(buf);
            node.encode(buf);
        }
        TraceEvent::NodeUp(node) => {
            4u8.encode(buf);
            node.encode(buf);
        }
        TraceEvent::RequestArrived {
            node,
            request,
            write,
        } => {
            5u8.encode(buf);
            node.encode(buf);
            request.encode(buf);
            write.encode(buf);
        }
        TraceEvent::ReadServed {
            node,
            request,
            version,
        } => {
            6u8.encode(buf);
            node.encode(buf);
            request.encode(buf);
            version.encode(buf);
        }
        TraceEvent::AgentDispatched { agent, home, batch } => {
            7u8.encode(buf);
            agent.encode(buf);
            home.encode(buf);
            batch.encode(buf);
        }
        TraceEvent::AgentMigrated {
            agent,
            from,
            to,
            hops,
        } => {
            8u8.encode(buf);
            agent.encode(buf);
            from.encode(buf);
            to.encode(buf);
            hops.encode(buf);
        }
        TraceEvent::AgentMigrateFailed { agent, from, to } => {
            9u8.encode(buf);
            agent.encode(buf);
            from.encode(buf);
            to.encode(buf);
        }
        TraceEvent::ReplicaDeclaredUnavailable { agent, node } => {
            10u8.encode(buf);
            agent.encode(buf);
            node.encode(buf);
        }
        TraceEvent::LockRequested { agent, node } => {
            11u8.encode(buf);
            agent.encode(buf);
            node.encode(buf);
        }
        TraceEvent::LockGranted {
            agent,
            node,
            visits,
            via_tie,
        } => {
            12u8.encode(buf);
            agent.encode(buf);
            node.encode(buf);
            visits.encode(buf);
            via_tie.encode(buf);
        }
        TraceEvent::UpdateSent { agent, version } => {
            13u8.encode(buf);
            agent.encode(buf);
            version.encode(buf);
        }
        TraceEvent::UpdateAcked {
            agent,
            node,
            positive,
        } => {
            14u8.encode(buf);
            agent.encode(buf);
            node.encode(buf);
            positive.encode(buf);
        }
        TraceEvent::WinAborted { agent } => {
            15u8.encode(buf);
            agent.encode(buf);
        }
        TraceEvent::CommitApplied {
            node,
            version,
            agent,
            key,
            request,
        } => {
            16u8.encode(buf);
            node.encode(buf);
            version.encode(buf);
            agent.encode(buf);
            key.encode(buf);
            request.encode(buf);
        }
        TraceEvent::AgentDisposed { agent, born } => {
            17u8.encode(buf);
            agent.encode(buf);
            born.encode(buf);
        }
        TraceEvent::UpdateCompleted {
            request,
            home,
            arrived,
            dispatched,
            locked,
            visits,
        } => {
            18u8.encode(buf);
            request.encode(buf);
            home.encode(buf);
            arrived.encode(buf);
            dispatched.encode(buf);
            locked.encode(buf);
            visits.encode(buf);
        }
        TraceEvent::SpanStart {
            id,
            parent,
            kind,
            a,
            b,
        } => {
            19u8.encode(buf);
            id.encode(buf);
            parent.encode(buf);
            kind.encode(buf);
            a.encode(buf);
            b.encode(buf);
        }
        TraceEvent::SpanEnd { id, kind } => {
            20u8.encode(buf);
            id.encode(buf);
            kind.encode(buf);
        }
        TraceEvent::SpanLink { from, to } => {
            21u8.encode(buf);
            from.encode(buf);
            to.encode(buf);
        }
        TraceEvent::Custom { kind, a, b } => {
            22u8.encode(buf);
            (*kind).to_string().encode(buf);
            a.encode(buf);
            b.encode(buf);
        }
        // Tags are appended in declaration order of *introduction*, so
        // traces written before a variant existed still decode.
        TraceEvent::AgentStateShipped { agent, bytes } => {
            23u8.encode(buf);
            agent.encode(buf);
            bytes.encode(buf);
        }
    }
}

fn decode_event(buf: &mut Bytes) -> Result<TraceEvent, WireError> {
    match u8::decode(buf)? {
        0 => Ok(TraceEvent::MsgSent {
            from: Wire::decode(buf)?,
            to: Wire::decode(buf)?,
            bytes: Wire::decode(buf)?,
        }),
        1 => Ok(TraceEvent::MsgDelivered {
            from: Wire::decode(buf)?,
            to: Wire::decode(buf)?,
            bytes: Wire::decode(buf)?,
        }),
        2 => Ok(TraceEvent::MsgDropped {
            from: Wire::decode(buf)?,
            to: Wire::decode(buf)?,
            reason: intern(String::decode(buf)?),
        }),
        3 => Ok(TraceEvent::NodeDown(Wire::decode(buf)?)),
        4 => Ok(TraceEvent::NodeUp(Wire::decode(buf)?)),
        5 => Ok(TraceEvent::RequestArrived {
            node: Wire::decode(buf)?,
            request: Wire::decode(buf)?,
            write: Wire::decode(buf)?,
        }),
        6 => Ok(TraceEvent::ReadServed {
            node: Wire::decode(buf)?,
            request: Wire::decode(buf)?,
            version: Wire::decode(buf)?,
        }),
        7 => Ok(TraceEvent::AgentDispatched {
            agent: Wire::decode(buf)?,
            home: Wire::decode(buf)?,
            batch: Wire::decode(buf)?,
        }),
        8 => Ok(TraceEvent::AgentMigrated {
            agent: Wire::decode(buf)?,
            from: Wire::decode(buf)?,
            to: Wire::decode(buf)?,
            hops: Wire::decode(buf)?,
        }),
        9 => Ok(TraceEvent::AgentMigrateFailed {
            agent: Wire::decode(buf)?,
            from: Wire::decode(buf)?,
            to: Wire::decode(buf)?,
        }),
        10 => Ok(TraceEvent::ReplicaDeclaredUnavailable {
            agent: Wire::decode(buf)?,
            node: Wire::decode(buf)?,
        }),
        11 => Ok(TraceEvent::LockRequested {
            agent: Wire::decode(buf)?,
            node: Wire::decode(buf)?,
        }),
        12 => Ok(TraceEvent::LockGranted {
            agent: Wire::decode(buf)?,
            node: Wire::decode(buf)?,
            visits: Wire::decode(buf)?,
            via_tie: Wire::decode(buf)?,
        }),
        13 => Ok(TraceEvent::UpdateSent {
            agent: Wire::decode(buf)?,
            version: Wire::decode(buf)?,
        }),
        14 => Ok(TraceEvent::UpdateAcked {
            agent: Wire::decode(buf)?,
            node: Wire::decode(buf)?,
            positive: Wire::decode(buf)?,
        }),
        15 => Ok(TraceEvent::WinAborted {
            agent: Wire::decode(buf)?,
        }),
        16 => Ok(TraceEvent::CommitApplied {
            node: Wire::decode(buf)?,
            version: Wire::decode(buf)?,
            agent: Wire::decode(buf)?,
            key: Wire::decode(buf)?,
            request: Wire::decode(buf)?,
        }),
        17 => Ok(TraceEvent::AgentDisposed {
            agent: Wire::decode(buf)?,
            born: Wire::decode(buf)?,
        }),
        18 => Ok(TraceEvent::UpdateCompleted {
            request: Wire::decode(buf)?,
            home: Wire::decode(buf)?,
            arrived: Wire::decode(buf)?,
            dispatched: Wire::decode(buf)?,
            locked: Wire::decode(buf)?,
            visits: Wire::decode(buf)?,
        }),
        19 => Ok(TraceEvent::SpanStart {
            id: Wire::decode(buf)?,
            parent: Wire::decode(buf)?,
            kind: Wire::decode(buf)?,
            a: Wire::decode(buf)?,
            b: Wire::decode(buf)?,
        }),
        20 => Ok(TraceEvent::SpanEnd {
            id: Wire::decode(buf)?,
            kind: Wire::decode(buf)?,
        }),
        21 => Ok(TraceEvent::SpanLink {
            from: Wire::decode(buf)?,
            to: Wire::decode(buf)?,
        }),
        22 => Ok(TraceEvent::Custom {
            kind: intern(String::decode(buf)?),
            a: Wire::decode(buf)?,
            b: Wire::decode(buf)?,
        }),
        23 => Ok(TraceEvent::AgentStateShipped {
            agent: Wire::decode(buf)?,
            bytes: Wire::decode(buf)?,
        }),
        tag => Err(WireError::InvalidTag {
            type_name: "TraceEvent",
            tag: u32::from(tag),
        }),
    }
}

/// Encode a full trace into the binary file format.
pub fn encode_trace(trace: &TraceLog) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.extend_from_slice(MAGIC);
    trace.records().len().encode(&mut buf);
    for rec in trace.records() {
        rec.at.encode(&mut buf);
        rec.node.encode(&mut buf);
        encode_event(&rec.event, &mut buf);
    }
    buf.to_vec()
}

/// Decode a binary trace file back into a [`TraceLog`] (at
/// [`TraceLevel::Full`], so every stored record is retained).
pub fn decode_trace(data: &[u8]) -> Result<TraceLog, WireError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(WireError::InvalidTag {
            type_name: "TraceFileMagic",
            tag: 0,
        });
    }
    buf.advance(MAGIC.len());
    let count = usize::decode(&mut buf)?;
    let mut log = TraceLog::new(TraceLevel::Full);
    for _ in 0..count {
        let at = SimTime::decode(&mut buf)?;
        let node = marp_sim::NodeId::decode(&mut buf)?;
        let event = decode_event(&mut buf)?;
        log.push(at, node, event);
    }
    Ok(log)
}

/// Write a trace to `path` in the binary format.
pub fn save_trace(path: &std::path::Path, trace: &TraceLog) -> std::io::Result<()> {
    std::fs::write(path, encode_trace(trace))
}

/// Read a binary trace file from `path`.
pub fn load_trace(path: &std::path::Path) -> std::io::Result<TraceLog> {
    let data = std::fs::read(path)?;
    decode_trace(&data).map_err(|err| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: not a marp trace file ({err:?})", path.display()),
        )
    })
}

/// Round-trip helper for tests and the CLI: records compare equal after
/// a save/load cycle.
pub fn roundtrip_equal(a: &TraceLog, b: &TraceLog) -> bool {
    let (ra, rb): (&[TraceRecord], &[TraceRecord]) = (a.records(), b.records());
    ra == rb
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, SpanKind};

    fn sample_trace() -> TraceLog {
        let mut log = TraceLog::new(TraceLevel::Full);
        log.push(
            SimTime::from_millis(1),
            0,
            TraceEvent::MsgSent {
                from: 0,
                to: 1,
                bytes: 33,
            },
        );
        log.push(
            SimTime::from_millis(2),
            1,
            TraceEvent::MsgDropped {
                from: 1,
                to: 0,
                reason: "partition",
            },
        );
        log.push(
            SimTime::from_millis(3),
            2,
            TraceEvent::SpanStart {
                id: span_id(SpanKind::Dispatch, 9, 0),
                parent: 0,
                kind: SpanKind::Dispatch,
                a: 9,
                b: 0,
            },
        );
        log.push(
            SimTime::from_millis(4),
            2,
            TraceEvent::Custom {
                kind: "adaptive-batch-size",
                a: 4,
                b: 2,
            },
        );
        log.push(
            SimTime::from_millis(5),
            2,
            TraceEvent::UpdateCompleted {
                request: 7,
                home: 2,
                arrived: SimTime::from_millis(1),
                dispatched: SimTime::from_millis(2),
                locked: SimTime::from_millis(4),
                visits: 3,
            },
        );
        log
    }

    #[test]
    fn binary_roundtrip_preserves_every_record() {
        let log = sample_trace();
        let bytes = encode_trace(&log);
        let back = decode_trace(&bytes).unwrap();
        assert!(roundtrip_equal(&log, &back));
    }

    #[test]
    fn interner_returns_stable_references() {
        let a = intern(String::from("some-label"));
        let b = intern(String::from("some-label"));
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(decode_trace(b"NOTATRACE").is_err());
        assert!(decode_trace(b"").is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = encode_trace(&sample_trace());
        assert!(decode_trace(&bytes[..bytes.len() - 3]).is_err());
    }
}
