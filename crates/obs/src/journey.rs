//! Plain-text per-agent journey timelines.
//!
//! Every agent-level trace event is folded into a chronological story of
//! that agent's life: dispatch, each migration hop, lock rounds, the
//! update quorum, commits, and disposal. Useful for eyeballing why one
//! write took the itinerary it did without loading the Perfetto UI.

use marp_sim::{agent_key_parts, AgentKey, TraceEvent, TraceLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Timelines for every agent that appears in a trace, keyed by agent key.
#[derive(Debug, Default)]
pub struct Journeys {
    agents: BTreeMap<AgentKey, Vec<String>>,
}

impl Journeys {
    /// Fold a trace into per-agent timelines.
    pub fn from_trace(trace: &TraceLog) -> Self {
        let mut journeys = Journeys::default();
        for rec in trace.records() {
            let at = rec.at.as_millis_f64();
            // Each arm names the agent the event belongs to; events with
            // no agent identity are listed explicitly and skipped.
            match rec.event {
                TraceEvent::AgentDispatched { agent, home, batch } => {
                    journeys.log(
                        agent,
                        at,
                        format!("dispatched from node {home} carrying {batch} request(s)"),
                    );
                }
                TraceEvent::AgentMigrated {
                    agent,
                    from,
                    to,
                    hops,
                } => {
                    journeys.log(agent, at, format!("migrated {from} -> {to} (hop {hops})"));
                }
                TraceEvent::AgentMigrateFailed { agent, from, to } => {
                    journeys.log(agent, at, format!("migration {from} -> {to} failed"));
                }
                TraceEvent::AgentStateShipped { agent, bytes } => {
                    journeys.log(agent, at, format!("shipped {bytes} byte(s) of state"));
                }
                TraceEvent::ReplicaDeclaredUnavailable { agent, node } => {
                    journeys.log(agent, at, format!("declared replica {node} unavailable"));
                }
                TraceEvent::LockRequested { agent, node } => {
                    journeys.log(
                        agent,
                        at,
                        format!("appended to locking list at node {node}"),
                    );
                }
                TraceEvent::LockGranted {
                    agent,
                    node,
                    visits,
                    via_tie,
                } => {
                    let how = if via_tie { "tie-break" } else { "majority" };
                    journeys.log(
                        agent,
                        at,
                        format!("lock granted at node {node} after {visits} visit(s) via {how}"),
                    );
                }
                TraceEvent::UpdateSent { agent, version } => {
                    journeys.log(agent, at, format!("broadcast UPDATE for version {version}"));
                }
                TraceEvent::UpdateAcked {
                    agent,
                    node,
                    positive,
                } => {
                    let verdict = if positive { "ack" } else { "nack" };
                    journeys.log(agent, at, format!("{verdict} from node {node}"));
                }
                TraceEvent::WinAborted { agent } => {
                    journeys.log(
                        agent,
                        at,
                        String::from("aborted claimed win, resuming lock rounds"),
                    );
                }
                TraceEvent::CommitApplied {
                    node,
                    version,
                    agent,
                    key,
                    request,
                } => {
                    journeys.log(
                        agent,
                        at,
                        format!("commit v{version} (key {key}, request {request}) applied at node {node}"),
                    );
                }
                TraceEvent::AgentDisposed { agent, born } => {
                    let lifetime = at - born.as_millis_f64();
                    journeys.log(agent, at, format!("disposed after {lifetime:.3} ms"));
                }
                TraceEvent::MsgSent { .. }
                | TraceEvent::MsgDelivered { .. }
                | TraceEvent::MsgDropped { .. }
                | TraceEvent::NodeDown(..)
                | TraceEvent::NodeUp(..)
                | TraceEvent::RequestArrived { .. }
                | TraceEvent::ReadServed { .. }
                | TraceEvent::UpdateCompleted { .. }
                | TraceEvent::SpanStart { .. }
                | TraceEvent::SpanEnd { .. }
                | TraceEvent::SpanLink { .. }
                | TraceEvent::Custom { .. } => {}
            }
        }
        journeys
    }

    fn log(&mut self, agent: AgentKey, at_ms: f64, line: String) {
        self.agents
            .entry(agent)
            .or_default()
            .push(format!("  {at_ms:>12.3} ms  {line}"));
    }

    /// Number of agents with at least one event.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// True when no agent events were present at all.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Render every journey as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (&key, lines) in &self.agents {
            let (home, seq) = agent_key_parts(key);
            let _ = writeln!(out, "agent {home}/{seq}:");
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("no agent events in trace\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{agent_key, NodeId, SimTime, TraceLevel};

    fn push(log: &mut TraceLog, at: u64, node: NodeId, event: TraceEvent) {
        log.push(SimTime::from_millis(at), node, event);
    }

    #[test]
    fn timeline_is_chronological_per_agent() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        let a = agent_key(0, 1);
        let b = agent_key(2, 1);
        push(
            &mut log,
            1,
            0,
            TraceEvent::AgentDispatched {
                agent: a,
                home: 0,
                batch: 2,
            },
        );
        push(
            &mut log,
            2,
            2,
            TraceEvent::AgentDispatched {
                agent: b,
                home: 2,
                batch: 1,
            },
        );
        push(
            &mut log,
            3,
            1,
            TraceEvent::AgentMigrated {
                agent: a,
                from: 0,
                to: 1,
                hops: 1,
            },
        );
        push(
            &mut log,
            4,
            1,
            TraceEvent::LockGranted {
                agent: a,
                node: 1,
                visits: 2,
                via_tie: false,
            },
        );
        push(
            &mut log,
            9,
            1,
            TraceEvent::AgentDisposed {
                agent: a,
                born: SimTime::from_millis(1),
            },
        );
        let journeys = Journeys::from_trace(&log);
        assert_eq!(journeys.len(), 2);
        let text = journeys.render();
        assert!(text.contains("agent 0/1:"));
        assert!(text.contains("agent 2/1:"));
        assert!(text.contains("migrated 0 -> 1 (hop 1)"));
        assert!(text.contains("disposed after 8.000 ms"));
        // Agent a's dispatch precedes its migration in the rendered text.
        let dispatched = text.find("dispatched from node 0").unwrap();
        let migrated = text.find("migrated 0 -> 1").unwrap();
        assert!(dispatched < migrated);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let log = TraceLog::new(TraceLevel::Protocol);
        let journeys = Journeys::from_trace(&log);
        assert!(journeys.is_empty());
        assert!(journeys.render().contains("no agent events"));
    }
}
