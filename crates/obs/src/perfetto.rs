//! Chrome `trace_event` / Perfetto JSON export.
//!
//! The output loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>: process 1 holds one track per replica
//! node, process 2 one track per agent (or per baseline coordination
//! round surrogate). Completed spans become `"X"` (complete) events,
//! spans that never closed become `"i"` (instant) markers, and span
//! links become `"s"`/`"f"` flow arrows.

use crate::json::Json;
use crate::spans::{Span, SpanSet};
use marp_sim::{agent_key_parts, SimTime, SpanKind, TraceLog};
use std::collections::BTreeMap;

const PID_NODES: f64 = 1.0;
const PID_AGENTS: f64 = 2.0;

fn ts_us(at: SimTime) -> f64 {
    at.as_nanos() as f64 / 1_000.0
}

/// Which track a span is drawn on.
fn track(span: &Span, agent_tids: &mut BTreeMap<u64, u64>) -> (f64, f64) {
    match span.kind {
        // Node-anchored phases: the request pending at its accepting
        // replica, and consistent reads (anchored at the home).
        SpanKind::Request | SpanKind::Read => (PID_NODES, f64::from(span.start_node)),
        // Agent-anchored phases: `a` is the agent key (or the baseline's
        // round surrogate).
        SpanKind::Dispatch
        | SpanKind::Migrate
        | SpanKind::LockAcquire
        | SpanKind::UpdateQuorum
        | SpanKind::Commit => {
            let next = agent_tids.len() as u64;
            let tid = *agent_tids.entry(span.a).or_insert(next);
            (PID_AGENTS, tid as f64)
        }
    }
}

fn meta(name: &str, pid: f64, tid: Option<f64>, label: String) -> Json {
    let mut pairs = vec![
        (String::from("name"), Json::Str(String::from(name))),
        (String::from("ph"), Json::Str(String::from("M"))),
        (String::from("pid"), Json::Num(pid)),
        (
            String::from("args"),
            Json::obj([("name", Json::Str(label))]),
        ),
    ];
    if let Some(tid) = tid {
        pairs.push((String::from("tid"), Json::Num(tid)));
    }
    Json::Obj(pairs.into_iter().collect())
}

fn span_args(span: &Span) -> Json {
    Json::obj([
        ("id", Json::Str(format!("{:#x}", span.id))),
        ("parent", Json::Str(format!("{:#x}", span.parent))),
        ("a", Json::Num(span.a as f64)),
        ("b", Json::Num(span.b as f64)),
        ("start_node", Json::Num(f64::from(span.start_node))),
    ])
}

/// Export a trace as a Chrome trace_event JSON document.
pub fn export(trace: &TraceLog) -> Json {
    let set = SpanSet::from_trace(trace);
    let mut events: Vec<Json> = Vec::new();
    let mut agent_tids: BTreeMap<u64, u64> = BTreeMap::new();
    let mut node_tids: BTreeMap<u64, ()> = BTreeMap::new();

    for span in set.spans() {
        let (pid, tid) = track(span, &mut agent_tids);
        if pid == PID_NODES {
            node_tids.insert(tid as u64, ());
        }
        let common = [
            (
                String::from("name"),
                Json::Str(String::from(span.kind.name())),
            ),
            (String::from("cat"), Json::Str(String::from("span"))),
            (String::from("pid"), Json::Num(pid)),
            (String::from("tid"), Json::Num(tid)),
            (String::from("ts"), Json::Num(ts_us(span.start))),
            (String::from("args"), span_args(span)),
        ];
        match span.end {
            Some(end) => {
                let mut pairs: BTreeMap<String, Json> = common.into_iter().collect();
                pairs.insert(String::from("ph"), Json::Str(String::from("X")));
                pairs.insert(
                    String::from("dur"),
                    Json::Num((ts_us(end) - ts_us(span.start)).max(0.001)),
                );
                events.push(Json::Obj(pairs));
            }
            None => {
                let mut pairs: BTreeMap<String, Json> = common.into_iter().collect();
                pairs.insert(String::from("ph"), Json::Str(String::from("i")));
                pairs.insert(String::from("s"), Json::Str(String::from("t")));
                events.push(Json::Obj(pairs));
            }
        }
    }

    // Flow arrows for span links: start at the source span's opening,
    // finish at the target span's opening.
    for (index, &(from, to)) in set.links().iter().enumerate() {
        let (Some(src), Some(dst)) = (set.get(from), set.get(to)) else {
            continue;
        };
        let mut tids = agent_tids.clone();
        let (src_pid, src_tid) = track(src, &mut tids);
        let (dst_pid, dst_tid) = track(dst, &mut tids);
        events.push(Json::obj([
            ("name", Json::Str(String::from("link"))),
            ("cat", Json::Str(String::from("link"))),
            ("ph", Json::Str(String::from("s"))),
            ("id", Json::Num(index as f64)),
            ("pid", Json::Num(src_pid)),
            ("tid", Json::Num(src_tid)),
            ("ts", Json::Num(ts_us(src.start))),
        ]));
        events.push(Json::obj([
            ("name", Json::Str(String::from("link"))),
            ("cat", Json::Str(String::from("link"))),
            ("ph", Json::Str(String::from("f"))),
            ("bp", Json::Str(String::from("e"))),
            ("id", Json::Num(index as f64)),
            ("pid", Json::Num(dst_pid)),
            ("tid", Json::Num(dst_tid)),
            ("ts", Json::Num(ts_us(dst.start))),
        ]));
    }

    // Track naming metadata.
    let mut metadata = vec![
        meta(
            "process_name",
            PID_NODES,
            None,
            String::from("replica nodes"),
        ),
        meta("process_name", PID_AGENTS, None, String::from("agents")),
    ];
    for &node in node_tids.keys() {
        metadata.push(meta(
            "thread_name",
            PID_NODES,
            Some(node as f64),
            format!("node {node}"),
        ));
    }
    for (&key, &tid) in &agent_tids {
        let (home, seq) = agent_key_parts(key);
        metadata.push(meta(
            "thread_name",
            PID_AGENTS,
            Some(tid as f64),
            format!("agent {home}/{seq}"),
        ));
    }
    metadata.extend(events);

    Json::obj([
        ("traceEvents", Json::Arr(metadata)),
        ("displayTimeUnit", Json::Str(String::from("ms"))),
    ])
}

/// Render the export directly to a JSON string.
pub fn export_string(trace: &TraceLog) -> String {
    export(trace).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, NodeId, TraceEvent, TraceLevel};

    fn start(log: &mut TraceLog, at: u64, node: NodeId, kind: SpanKind, a: u64, b: u64) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanStart {
                id: span_id(kind, a, b),
                parent: 0,
                kind,
                a,
                b,
            },
        );
    }

    fn end(log: &mut TraceLog, at: u64, node: NodeId, kind: SpanKind, a: u64, b: u64) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanEnd {
                id: span_id(kind, a, b),
                kind,
            },
        );
    }

    #[test]
    fn export_produces_valid_json_with_both_processes() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        start(&mut log, 1, 0, SpanKind::Request, 100, 0);
        start(&mut log, 2, 0, SpanKind::Dispatch, 7, 0);
        log.push(
            SimTime::from_millis(2),
            0,
            TraceEvent::SpanLink {
                from: span_id(SpanKind::Request, 100, 0),
                to: span_id(SpanKind::Dispatch, 7, 0),
            },
        );
        end(&mut log, 9, 0, SpanKind::Request, 100, 0);
        // Dispatch never closes -> instant marker.
        let text = export_string(&log);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(p))
                .count()
        };
        assert_eq!(ph("X"), 1, "one complete span");
        assert_eq!(ph("i"), 1, "one unmatched start");
        assert_eq!(ph("s"), 1, "flow start");
        assert_eq!(ph("f"), 1, "flow finish");
        assert!(ph("M") >= 4, "process + thread metadata");
        // The request span sits on the node process, the dispatch span
        // on the agent process.
        let pid_of = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(|v| v.as_str()) == Some(name))
                .and_then(|e| e.get("pid"))
                .and_then(|p| p.as_num())
                .unwrap()
        };
        assert_eq!(pid_of("request"), 1.0);
        assert_eq!(pid_of("dispatch"), 2.0);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        start(&mut log, 3, 0, SpanKind::Request, 1, 0);
        end(&mut log, 5, 0, SpanKind::Request, 1, 0);
        let doc = export(&log);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_num(), Some(3000.0));
        assert_eq!(span.get("dur").unwrap().as_num(), Some(2000.0));
    }
}
