//! Shared `--trace-out` / `--metrics-out` command-line handling.
//!
//! Every lab binary and example accepts the same two flags; this keeps
//! the parsing and the file writing in one place. `--trace-out` records
//! the run's [`TraceLog`] in the binary store format that `marp-trace`
//! consumes; `--metrics-out` dumps the per-node metrics registry as CSV.

use crate::registry::MetricsRegistry;
use crate::store::save_trace;
use marp_sim::TraceLog;
use std::path::PathBuf;
use std::time::Duration;

/// Observability output destinations extracted from argv.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ObsOptions {
    /// Destination for the binary trace (`--trace-out <path>`).
    pub trace_out: Option<PathBuf>,
    /// Destination for the metrics CSV (`--metrics-out <path>`).
    pub metrics_out: Option<PathBuf>,
}

impl ObsOptions {
    /// Remove `--trace-out <path>` / `--metrics-out <path>` (and the
    /// `=`-joined forms) from `args`, leaving the rest untouched so the
    /// binary's own argument handling sees only what it expects.
    pub fn extract(args: &mut Vec<String>) -> ObsOptions {
        let mut opts = ObsOptions::default();
        let mut kept = Vec::with_capacity(args.len());
        let mut iter = std::mem::take(args).into_iter();
        while let Some(arg) = iter.next() {
            if let Some(path) = arg.strip_prefix("--trace-out=") {
                opts.trace_out = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
                opts.metrics_out = Some(PathBuf::from(path));
            } else if arg == "--trace-out" {
                opts.trace_out = iter.next().map(PathBuf::from);
            } else if arg == "--metrics-out" {
                opts.metrics_out = iter.next().map(PathBuf::from);
            } else {
                kept.push(arg);
            }
        }
        *args = kept;
        opts
    }

    /// Parse directly from the process arguments (skipping argv[0]).
    pub fn from_env() -> ObsOptions {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        ObsOptions::extract(&mut args)
    }

    /// True when at least one output was requested.
    pub fn any(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Write whichever outputs were requested. Returns a short status
    /// line per file written (for the binary to print), or the first
    /// I/O error encountered.
    pub fn write(&self, trace: &TraceLog) -> std::io::Result<Vec<String>> {
        let mut written = Vec::new();
        if let Some(path) = &self.trace_out {
            save_trace(path, trace)?;
            written.push(format!(
                "trace: {} records -> {}",
                trace.records().len(),
                path.display()
            ));
        }
        if let Some(path) = &self.metrics_out {
            let registry = MetricsRegistry::from_trace(trace, Duration::from_millis(100));
            std::fs::write(path, registry.to_csv())?;
            written.push(format!("metrics: csv -> {}", path.display()));
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::TraceLevel;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extract_removes_only_obs_flags() {
        let mut args = argv(&[
            "--nodes",
            "5",
            "--trace-out",
            "/tmp/t.bin",
            "--seed=9",
            "--metrics-out=/tmp/m.csv",
        ]);
        let opts = ObsOptions::extract(&mut args);
        assert_eq!(opts.trace_out, Some(PathBuf::from("/tmp/t.bin")));
        assert_eq!(opts.metrics_out, Some(PathBuf::from("/tmp/m.csv")));
        assert_eq!(args, argv(&["--nodes", "5", "--seed=9"]));
        assert!(opts.any());
    }

    #[test]
    fn absent_flags_mean_no_outputs() {
        let mut args = argv(&["--nodes", "5"]);
        let opts = ObsOptions::extract(&mut args);
        assert!(!opts.any());
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn write_produces_both_files() {
        let dir = std::env::temp_dir().join("marp-obs-flags-test");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = ObsOptions {
            trace_out: Some(dir.join("t.bin")),
            metrics_out: Some(dir.join("m.csv")),
        };
        let trace = TraceLog::new(TraceLevel::Protocol);
        let written = opts.write(&trace).unwrap();
        assert_eq!(written.len(), 2);
        assert!(dir.join("t.bin").exists());
        assert!(std::fs::read_to_string(dir.join("m.csv"))
            .unwrap()
            .starts_with("section,node,metric"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
