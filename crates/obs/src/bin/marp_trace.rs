//! `marp-trace` — inspect and convert recorded simulation traces.
//!
//! The lab binaries and examples write binary traces with
//! `--trace-out <path>`; this tool turns them into something viewable:
//!
//! ```text
//! marp-trace export <trace.bin> [out.json]   Chrome/Perfetto trace_event JSON
//! marp-trace journey <trace.bin>             per-agent plain-text timelines
//! marp-trace metrics <trace.bin> [out.csv]   per-node metrics registry as CSV
//! marp-trace critical-path <trace.bin>       commit-latency breakdown
//! marp-trace validate <out.json> <trace.bin> check an export against its trace
//! ```

use marp_obs::{
    load_trace, perfetto_export_string, CriticalPathReport, Journeys, Json, MetricsRegistry,
    SpanSet,
};
use marp_sim::{span_id, SpanKind, TraceEvent, TraceLog};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: marp-trace <command> <args>\n\
  export <trace.bin> [out.json]   write Chrome trace_event JSON (stdout if no path)\n\
  journey <trace.bin>             print per-agent journey timelines\n\
  metrics <trace.bin> [out.csv]   write per-node metrics CSV (stdout if no path)\n\
  critical-path <trace.bin>       print the commit-latency critical-path report\n\
  validate <out.json> <trace.bin> verify the JSON parses and covers every committed write";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("export") => cmd_export(&args[1..]),
        Some("journey") => cmd_journey(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("critical-path") => cmd_critical(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
        None => Err(String::from(USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("marp-trace: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<TraceLog, String> {
    load_trace(std::path::Path::new(path))
        .map_err(|err| format!("cannot load trace '{path}': {err}"))
}

fn emit(text: String, out: Option<&String>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, &text)
            .map_err(|err| format!("cannot write '{path}': {err}"))
            .map(|()| eprintln!("wrote {} bytes to {path}", text.len())),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("export: missing <trace.bin>")?;
    let trace = load(path)?;
    emit(perfetto_export_string(&trace), args.get(1))
}

fn cmd_journey(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("journey: missing <trace.bin>")?;
    let trace = load(path)?;
    print!("{}", Journeys::from_trace(&trace).render());
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("metrics: missing <trace.bin>")?;
    let trace = load(path)?;
    let registry = MetricsRegistry::from_trace(&trace, Duration::from_millis(100));
    emit(registry.to_csv(), args.get(1))
}

fn cmd_critical(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("critical-path: missing <trace.bin>")?;
    let trace = load(path)?;
    let report = CriticalPathReport::from_trace(&trace);
    print!("{}", report.render());
    if report.min_coverage() < 0.95 {
        return Err(format!(
            "coverage below 95%: {:.1}%",
            report.min_coverage() * 100.0
        ));
    }
    Ok(())
}

/// Check that an exported JSON document parses, and that the trace it
/// came from has at least one span for every committed write.
fn cmd_validate(args: &[String]) -> Result<(), String> {
    let json_path = args.first().ok_or("validate: missing <out.json>")?;
    let trace_path = args.get(1).ok_or("validate: missing <trace.bin>")?;

    let text = std::fs::read_to_string(json_path)
        .map_err(|err| format!("cannot read '{json_path}': {err}"))?;
    let doc = Json::parse(&text).map_err(|err| format!("invalid JSON in '{json_path}': {err}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("JSON has no traceEvents array")?;
    let span_events = events
        .iter()
        .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("X") | Some("i")))
        .count();
    if span_events == 0 {
        return Err(String::from("export contains no span events"));
    }

    let trace = load(trace_path)?;
    let set = SpanSet::from_trace(&trace);
    let mut commits = 0u64;
    let mut missing = Vec::new();
    for rec in trace.records() {
        if let TraceEvent::UpdateCompleted { request, home, .. } = rec.event {
            commits += 1;
            let id = span_id(SpanKind::Request, request, u64::from(home));
            if set.get(id).is_none() {
                missing.push(request);
            }
        }
    }
    if commits == 0 {
        return Err(String::from("trace has no committed writes"));
    }
    if !missing.is_empty() {
        return Err(format!(
            "{} of {commits} committed write(s) have no request span: {missing:?}",
            missing.len()
        ));
    }
    println!(
        "ok: {span_events} span event(s) in JSON, {commits} committed write(s) all covered, \
         {} span(s) reconstructed ({} unmatched end(s))",
        set.spans().len(),
        set.unmatched_ends
    );
    Ok(())
}
