//! Run comparison (`marp-trace diff`).
//!
//! Compares two [`Profile`]s path-by-path or two [`SweepReport`]s
//! phase-by-phase, reporting which cost centres *grew in share* — the
//! question a perf PR gets judged on. Both comparisons render a text
//! table and a deterministic JSON document so CI can gate on the
//! machine-readable form.

use crate::json::Json;
use crate::profile::Profile;
use crate::sweep::{SweepReport, METRICS};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Share change of one kind path between two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDelta {
    /// The kind path (e.g. `dispatch;migrate`).
    pub path: String,
    /// Exclusive time in the old profile, ns.
    pub before_ns: u64,
    /// Exclusive time in the new profile, ns.
    pub after_ns: u64,
    /// Share of total exclusive time before (0..=1).
    pub before_share: f64,
    /// Share of total exclusive time after (0..=1).
    pub after_share: f64,
}

impl PathDelta {
    /// Signed share change (positive = the path grew in share).
    pub fn share_delta(&self) -> f64 {
        self.after_share - self.before_share
    }
}

/// Path-level comparison of two profiles.
#[derive(Debug, Default, PartialEq)]
pub struct ProfileDiff {
    /// Every path present in either profile, sorted by absolute share
    /// change descending (ties by path).
    pub paths: Vec<PathDelta>,
}

/// Round a share to 6 decimals so output stays byte-stable and small.
fn round_share(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

impl ProfileDiff {
    /// Compare `before` against `after`.
    pub fn between(before: &Profile, after: &Profile) -> Self {
        let before_total = before.total_excl_ns().max(1) as f64;
        let after_total = after.total_excl_ns().max(1) as f64;
        let all_paths: BTreeSet<&String> =
            before.by_path.keys().chain(after.by_path.keys()).collect();
        let mut paths: Vec<PathDelta> = all_paths
            .into_iter()
            .map(|path| {
                let b = before.by_path.get(path).map(|s| s.excl_ns).unwrap_or(0);
                let a = after.by_path.get(path).map(|s| s.excl_ns).unwrap_or(0);
                PathDelta {
                    path: path.clone(),
                    before_ns: b,
                    after_ns: a,
                    before_share: round_share(b as f64 / before_total),
                    after_share: round_share(a as f64 / after_total),
                }
            })
            .collect();
        paths.sort_by(|x, y| {
            y.share_delta()
                .abs()
                .partial_cmp(&x.share_delta().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.path.cmp(&y.path))
        });
        ProfileDiff { paths }
    }

    /// Paths whose share grew by more than `threshold` (e.g. 0.01 for
    /// one percentage point).
    pub fn grew(&self, threshold: f64) -> Vec<&PathDelta> {
        self.paths
            .iter()
            .filter(|d| d.share_delta() > threshold)
            .collect()
    }

    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<48} {:>12} {:>12} {:>9} {:>9} {:>8}",
            "path", "before_ms", "after_ms", "before%", "after%", "Δshare"
        );
        for d in &self.paths {
            let _ = writeln!(
                out,
                "{:<48} {:>12.3} {:>12.3} {:>8.1}% {:>8.1}% {:>+7.1}%",
                d.path,
                d.before_ns as f64 / 1e6,
                d.after_ns as f64 / 1e6,
                d.before_share * 100.0,
                d.after_share * 100.0,
                d.share_delta() * 100.0
            );
        }
        out
    }

    /// Serialize as deterministic JSON (schema
    /// `marp-prof/profile-diff/v1`).
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .paths
            .iter()
            .map(|d| {
                Json::obj([
                    ("path", Json::Str(d.path.clone())),
                    ("before_ns", Json::Num(d.before_ns as f64)),
                    ("after_ns", Json::Num(d.after_ns as f64)),
                    ("before_share", Json::Num(d.before_share)),
                    ("after_share", Json::Num(d.after_share)),
                    ("share_delta", Json::Num(round_share(d.share_delta()))),
                ])
            })
            .collect();
        Json::obj([
            (
                "schema",
                Json::Str(String::from("marp-prof/profile-diff/v1")),
            ),
            ("paths", Json::Arr(rows)),
        ])
    }
}

/// Exponent and top-point share change of one metric between two
/// sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name (see [`METRICS`]).
    pub metric: String,
    /// Fitted growth exponent before, if defined.
    pub before_k: Option<f64>,
    /// Fitted growth exponent after, if defined.
    pub after_k: Option<f64>,
    /// Per-commit value at the largest common replica count, before.
    pub before_top: f64,
    /// Per-commit value at the largest common replica count, after.
    pub after_top: f64,
}

/// Phase-level comparison of two sweeps.
#[derive(Debug, Default, PartialEq)]
pub struct SweepDiff {
    /// Largest replica count present in both sweeps (0 when disjoint).
    pub top_n: usize,
    /// One row per metric in [`METRICS`] order.
    pub metrics: Vec<MetricDelta>,
}

impl SweepDiff {
    /// Compare `before` against `after`.
    pub fn between(before: &SweepReport, after: &SweepReport) -> Self {
        let top_n = before
            .points
            .iter()
            .map(|p| p.n)
            .filter(|n| after.points.iter().any(|p| p.n == *n))
            .max()
            .unwrap_or(0);
        let value_at = |report: &SweepReport, metric: &str| -> f64 {
            let extract = METRICS
                .iter()
                .find(|(name, _)| *name == metric)
                .map(|&(_, f)| f)
                .expect("metric names come from METRICS");
            report
                .points
                .iter()
                .find(|p| p.n == top_n)
                .map(|p| (extract(p) * 1000.0).round() / 1000.0)
                .unwrap_or(0.0)
        };
        let metrics = METRICS
            .iter()
            .map(|&(name, _)| MetricDelta {
                metric: String::from(name),
                before_k: before.exponent(name),
                after_k: after.exponent(name),
                before_top: value_at(before, name),
                after_top: value_at(after, name),
            })
            .collect();
        SweepDiff { top_n, metrics }
    }

    /// Metrics whose growth exponent increased by more than
    /// `threshold`.
    pub fn steepened(&self, threshold: f64) -> Vec<&MetricDelta> {
        self.metrics
            .iter()
            .filter(|m| match (m.before_k, m.after_k) {
                (Some(b), Some(a)) => a - b > threshold,
                (None, Some(a)) => a > threshold,
                (Some(..), None) | (None, None) => false,
            })
            .collect()
    }

    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "comparison at n={} (largest common replica count):",
            self.top_n
        );
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>9} {:>14} {:>14}",
            "metric", "k_before", "k_after", "before/commit", "after/commit"
        );
        let fmt_k = |k: Option<f64>| {
            k.map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| String::from("-"))
        };
        for m in &self.metrics {
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>9} {:>14.3} {:>14.3}",
                m.metric,
                fmt_k(m.before_k),
                fmt_k(m.after_k),
                m.before_top,
                m.after_top
            );
        }
        out
    }

    /// Serialize as deterministic JSON (schema `marp-prof/sweep-diff/v1`).
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .metrics
            .iter()
            .map(|m| {
                let k = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
                Json::obj([
                    ("metric", Json::Str(m.metric.clone())),
                    ("before_k", k(m.before_k)),
                    ("after_k", k(m.after_k)),
                    ("before_top", Json::Num(m.before_top)),
                    ("after_top", Json::Num(m.after_top)),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(String::from("marp-prof/sweep-diff/v1"))),
            ("top_n", Json::Num(self.top_n as f64)),
            ("metrics", Json::Arr(rows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PathStats;
    use crate::sweep::SweepPoint;

    fn profile_with(paths: &[(&str, u64)]) -> Profile {
        let mut profile = Profile::default();
        for &(path, excl) in paths {
            profile.by_path.insert(
                String::from(path),
                PathStats {
                    count: 1,
                    open: 0,
                    incl_ns: excl,
                    excl_ns: excl,
                    bytes: 0,
                },
            );
        }
        profile
    }

    #[test]
    fn grown_paths_rank_first_and_cross_threshold() {
        let before = profile_with(&[("dispatch", 600), ("dispatch;migrate", 400)]);
        let after = profile_with(&[("dispatch", 200), ("dispatch;migrate", 800)]);
        let diff = ProfileDiff::between(&before, &after);
        assert_eq!(diff.paths[0].path, "dispatch;migrate");
        assert!(diff.paths[0].share_delta() > 0.39);
        let grew = diff.grew(0.01);
        assert_eq!(grew.len(), 1);
        assert_eq!(grew[0].path, "dispatch;migrate");
    }

    #[test]
    fn paths_missing_on_one_side_still_appear() {
        let before = profile_with(&[("request", 100)]);
        let after = profile_with(&[("request", 50), ("request;read", 50)]);
        let diff = ProfileDiff::between(&before, &after);
        assert_eq!(diff.paths.len(), 2);
        let new_path = diff
            .paths
            .iter()
            .find(|d| d.path == "request;read")
            .unwrap();
        assert_eq!(new_path.before_ns, 0);
        assert_eq!(new_path.after_share, 0.5);
    }

    #[test]
    fn profile_diff_json_is_stable() {
        let before = profile_with(&[("request", 100)]);
        let after = profile_with(&[("request", 200)]);
        let a = ProfileDiff::between(&before, &after).to_json().render();
        let b = ProfileDiff::between(&before, &after).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("marp-prof/profile-diff/v1"));
    }

    fn sweep(power: f64) -> SweepReport {
        let point = |n: usize| {
            let v = (n as f64).powf(power);
            SweepPoint {
                n,
                seeds: vec![1],
                commits: 10,
                total_ms: 10.0 * v,
                queueing_ms: 1.0 * v,
                network_ms: 2.0 * v,
                lock_wait_ms: 6.0 * v,
                quorum_wait_ms: 1.0 * v,
                migrations: (10.0 * v) as u64,
                migrated_bytes: (100.0 * v) as u64,
                gossip_bytes: (10.0 * v) as u64,
                total_bytes: (200.0 * v) as u64,
                messages: (20.0 * v) as u64,
                lt_entries_carried: (5.0 * v) as u64,
            }
        };
        SweepReport::new(vec![point(3), point(5), point(9)])
    }

    #[test]
    fn sweep_diff_reports_steepened_exponents() {
        let before = sweep(1.0);
        let after = sweep(2.0);
        let diff = SweepDiff::between(&before, &after);
        assert_eq!(diff.top_n, 9);
        let steepened = diff.steepened(0.5);
        assert!(steepened.iter().any(|m| m.metric == "lock-wait-ms"));
        let same = SweepDiff::between(&before, &sweep(1.0));
        assert!(same.steepened(0.5).is_empty());
    }

    #[test]
    fn sweep_diff_render_and_json_name_every_metric() {
        let diff = SweepDiff::between(&sweep(1.0), &sweep(1.5));
        let text = diff.render();
        let json = diff.to_json().render();
        for (name, _) in METRICS {
            assert!(text.contains(name), "render missing {name}");
            assert!(json.contains(name), "json missing {name}");
        }
    }
}
