//! Per-node metrics registry.
//!
//! A [`MetricsRegistry`] is built by one exhaustive walk over a recorded
//! trace: counters for every message/agent/lock event by kind, latency
//! histograms ([`marp_metrics::LogHistogram`]) for the quantities the
//! paper cares about (lock wait, end-to-end commit, migrations per win),
//! and a gauge time-series sampled at a configurable virtual-time
//! interval. Registries from different sweep shards merge losslessly:
//! counters add, histograms merge bucket-wise, samples interleave.

use marp_metrics::LogHistogram;
use marp_sim::{NodeId, SimTime, TraceEvent, TraceLog};
use std::collections::BTreeMap;
use std::time::Duration;

/// Counter and histogram store for one node.
#[derive(Debug, Default, Clone)]
pub struct NodeMetrics {
    /// Monotonic event counters, keyed by a stable metric name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Latency/size histograms, keyed by a stable metric name.
    pub histograms: BTreeMap<&'static str, LogHistogram>,
}

impl NodeMetrics {
    fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(LogHistogram::for_latency_ms)
            .record(value);
    }

    /// Merge another node's metrics into this one.
    pub fn merge(&mut self, other: &NodeMetrics) {
        for (&name, &value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (&name, hist) in &other.histograms {
            self.histograms
                .entry(name)
                .or_insert_with(LogHistogram::for_latency_ms)
                .merge(hist);
        }
    }
}

/// One point of the sampled gauge time-series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Spans started but not yet ended at this instant.
    pub open_spans: i64,
    /// Update agents dispatched but not yet disposed.
    pub live_agents: i64,
    /// Writes arrived but not yet completed.
    pub pending_writes: i64,
}

/// The full registry: per-node stores plus the sampled series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Per-node metrics, keyed by node id.
    pub nodes: BTreeMap<NodeId, NodeMetrics>,
    /// Gauge samples in time order.
    pub samples: Vec<GaugeSample>,
}

impl MetricsRegistry {
    /// Build a registry from a trace, sampling gauges every
    /// `sample_every` of virtual time (pass e.g. 100 ms; granularity
    /// below 1 ns is clamped to 1 ns).
    pub fn from_trace(trace: &TraceLog, sample_every: Duration) -> Self {
        let mut registry = MetricsRegistry::default();
        let step = (sample_every.as_nanos() as u64).max(1);
        let mut next_sample = SimTime::from_nanos(step);
        let mut open_spans: i64 = 0;
        let mut live_agents: i64 = 0;
        let mut pending_writes: i64 = 0;
        for rec in trace.records() {
            while rec.at >= next_sample {
                registry.samples.push(GaugeSample {
                    at: next_sample,
                    open_spans,
                    live_agents,
                    pending_writes,
                });
                next_sample = SimTime::from_nanos(next_sample.as_nanos() + step);
            }
            let node = registry.nodes.entry(rec.node).or_default();
            match rec.event {
                TraceEvent::MsgSent { bytes, .. } => {
                    node.bump("msg.sent");
                    node.observe("msg.sent_bytes", bytes as f64);
                }
                TraceEvent::MsgDelivered { bytes, .. } => {
                    node.bump("msg.delivered");
                    node.observe("msg.delivered_bytes", bytes as f64);
                }
                TraceEvent::MsgDropped { .. } => node.bump("msg.dropped"),
                TraceEvent::NodeDown(..) => node.bump("node.down"),
                TraceEvent::NodeUp(..) => node.bump("node.up"),
                TraceEvent::RequestArrived { write, .. } => {
                    if write {
                        node.bump("request.write");
                        pending_writes += 1;
                    } else {
                        node.bump("request.read");
                    }
                }
                TraceEvent::ReadServed { .. } => node.bump("read.served"),
                TraceEvent::AgentDispatched { batch, .. } => {
                    node.bump("agent.dispatched");
                    node.observe("agent.batch_size", batch as f64);
                    live_agents += 1;
                }
                TraceEvent::AgentMigrated { .. } => node.bump("agent.migrated"),
                TraceEvent::AgentMigrateFailed { .. } => node.bump("agent.migrate_failed"),
                TraceEvent::AgentStateShipped { bytes, .. } => {
                    node.bump("agent.state_shipped");
                    node.observe("agent.state_bytes", bytes as f64);
                }
                TraceEvent::ReplicaDeclaredUnavailable { .. } => {
                    node.bump("agent.replica_unavailable")
                }
                TraceEvent::LockRequested { .. } => node.bump("lock.requested"),
                TraceEvent::LockGranted {
                    via_tie, visits, ..
                } => {
                    node.bump("lock.granted");
                    if via_tie {
                        node.bump("lock.granted_via_tie");
                    }
                    node.observe("lock.visits_per_win", f64::from(visits.max(1)));
                }
                TraceEvent::UpdateSent { .. } => node.bump("update.sent"),
                TraceEvent::UpdateAcked { positive, .. } => {
                    if positive {
                        node.bump("update.acked");
                    } else {
                        node.bump("update.nacked");
                    }
                }
                TraceEvent::WinAborted { .. } => node.bump("update.retry"),
                TraceEvent::CommitApplied { .. } => node.bump("commit.applied"),
                TraceEvent::AgentDisposed { agent: _, born } => {
                    node.bump("agent.disposed");
                    node.observe(
                        "agent.lifetime_ms",
                        rec.at.as_millis_f64() - born.as_millis_f64(),
                    );
                    live_agents -= 1;
                }
                TraceEvent::UpdateCompleted {
                    arrived,
                    dispatched,
                    locked,
                    visits,
                    ..
                } => {
                    node.bump("update.completed");
                    pending_writes -= 1;
                    let now = rec.at.as_millis_f64();
                    node.observe("write.total_ms", now - arrived.as_millis_f64());
                    node.observe(
                        "write.lock_wait_ms",
                        locked.as_millis_f64() - dispatched.as_millis_f64(),
                    );
                    node.observe("write.migrations_per_win", f64::from(visits.max(1)));
                }
                TraceEvent::SpanStart { .. } => {
                    node.bump("span.start");
                    open_spans += 1;
                }
                TraceEvent::SpanEnd { .. } => {
                    node.bump("span.end");
                    open_spans -= 1;
                }
                TraceEvent::SpanLink { .. } => node.bump("span.link"),
                TraceEvent::Custom { .. } => node.bump("custom"),
            }
        }
        registry
    }

    /// Merge another registry (e.g. from a different sweep shard).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&node, metrics) in &other.nodes {
            self.nodes.entry(node).or_default().merge(metrics);
        }
        self.samples.extend(other.samples.iter().copied());
        self.samples.sort_by_key(|s| s.at);
    }

    /// Sum of one counter across every node.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.nodes
            .values()
            .filter_map(|m| m.counters.get(name))
            .sum()
    }

    /// Render the registry as CSV: one row per (node, metric), counters
    /// first, then histogram quantiles, then the gauge samples.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("section,node,metric,count,p50,p90,p99,p999,max_seen\n");
        for (&node, metrics) in &self.nodes {
            for (&name, &value) in &metrics.counters {
                out.push_str(&format!("counter,{node},{name},{value},,,,,\n"));
            }
            for (&name, hist) in &metrics.histograms {
                let q = |p: f64| {
                    hist.quantile(p)
                        .map(|v| format!("{v:.4}"))
                        .unwrap_or_default()
                };
                out.push_str(&format!(
                    "histogram,{node},{name},{},{},{},{},{},{}\n",
                    hist.total(),
                    q(0.5),
                    q(0.9),
                    q(0.99),
                    q(0.999),
                    q(1.0),
                ));
            }
        }
        for sample in &self.samples {
            out.push_str(&format!(
                "gauge,,t_ms={:.3},open_spans={},live_agents={},pending_writes={},,,\n",
                sample.at.as_millis_f64(),
                sample.open_spans,
                sample.live_agents,
                sample.pending_writes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, SpanKind, TraceLevel};

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new(TraceLevel::Full);
        log.push(
            SimTime::from_millis(1),
            0,
            TraceEvent::RequestArrived {
                node: 0,
                request: 1,
                write: true,
            },
        );
        log.push(
            SimTime::from_millis(2),
            0,
            TraceEvent::AgentDispatched {
                agent: 7,
                home: 0,
                batch: 2,
            },
        );
        log.push(
            SimTime::from_millis(2),
            0,
            TraceEvent::SpanStart {
                id: span_id(SpanKind::Dispatch, 7, 0),
                parent: 0,
                kind: SpanKind::Dispatch,
                a: 7,
                b: 0,
            },
        );
        log.push(
            SimTime::from_millis(150),
            1,
            TraceEvent::AgentMigrated {
                agent: 7,
                from: 0,
                to: 1,
                hops: 1,
            },
        );
        log.push(
            SimTime::from_millis(320),
            0,
            TraceEvent::UpdateCompleted {
                request: 1,
                home: 0,
                arrived: SimTime::from_millis(1),
                dispatched: SimTime::from_millis(2),
                locked: SimTime::from_millis(200),
                visits: 3,
            },
        );
        log.push(
            SimTime::from_millis(321),
            0,
            TraceEvent::SpanEnd {
                id: span_id(SpanKind::Dispatch, 7, 0),
                kind: SpanKind::Dispatch,
            },
        );
        log
    }

    #[test]
    fn counters_land_on_the_emitting_node() {
        let registry = MetricsRegistry::from_trace(&sample_log(), Duration::from_millis(100));
        assert_eq!(registry.nodes[&0].counters["agent.dispatched"], 1);
        assert_eq!(registry.nodes[&1].counters["agent.migrated"], 1);
        assert_eq!(registry.counter_total("span.start"), 1);
        assert_eq!(registry.counter_total("span.end"), 1);
        let lock_wait = &registry.nodes[&0].histograms["write.lock_wait_ms"];
        assert_eq!(lock_wait.total(), 1);
        assert!(lock_wait.quantile(0.5).unwrap() > 150.0);
    }

    #[test]
    fn gauges_are_sampled_on_the_requested_grid() {
        let registry = MetricsRegistry::from_trace(&sample_log(), Duration::from_millis(100));
        // Samples at 100, 200, 300 ms (records end at 321 ms).
        assert_eq!(registry.samples.len(), 3);
        assert_eq!(registry.samples[0].at, SimTime::from_millis(100));
        assert_eq!(registry.samples[0].open_spans, 1);
        assert_eq!(registry.samples[0].live_agents, 1);
        assert_eq!(registry.samples[0].pending_writes, 1);
        assert_eq!(registry.samples[2].pending_writes, 1);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = MetricsRegistry::from_trace(&sample_log(), Duration::from_millis(100));
        let mut b = MetricsRegistry::from_trace(&sample_log(), Duration::from_millis(100));
        b.merge(&a);
        assert_eq!(b.nodes[&0].counters["agent.dispatched"], 2);
        assert_eq!(b.nodes[&0].histograms["write.total_ms"].total(), 2);
        assert_eq!(b.samples.len(), 6);
        assert!(b.samples.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn csv_has_counter_histogram_and_gauge_sections() {
        let registry = MetricsRegistry::from_trace(&sample_log(), Duration::from_millis(100));
        let csv = registry.to_csv();
        assert!(csv.starts_with("section,node,metric,count,p50,p90,p99,p999,max_seen"));
        assert!(csv.contains("counter,0,agent.dispatched,1"));
        assert!(csv.contains("histogram,0,write.total_ms,1"));
        assert!(csv.contains("gauge,,t_ms=100.000"));
        // Every row has the same number of columns as the header.
        let columns = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        }
    }

    /// `for_latency_ms` buckets grow 5% per step, so a quantile is the
    /// lower bound of the bucket its sample landed in: within 5% below
    /// the true value.
    fn assert_within_bucket(q: f64, expected: f64) {
        assert!(
            q <= expected && q > expected / 1.05 - 1e-9,
            "quantile {q} not within one bucket below {expected}"
        );
    }

    #[test]
    fn histogram_percentiles_pin_a_known_uniform_distribution() {
        let mut hist = LogHistogram::for_latency_ms();
        for i in 1..=1000 {
            hist.record(i as f64);
        }
        assert_eq!(hist.total(), 1000);
        let p50 = hist.quantile(0.5).unwrap();
        let p99 = hist.quantile(0.99).unwrap();
        let p999 = hist.quantile(0.999).unwrap();
        assert_within_bucket(p50, 500.0);
        assert_within_bucket(p99, 990.0);
        assert_within_bucket(p999, 999.0);
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p999 <= hist.quantile(1.0).unwrap());
    }

    #[test]
    fn histogram_percentiles_pin_a_heavy_tail() {
        // 990 fast samples at 1 ms, 10 stragglers at 1000 ms: the tail
        // is invisible at p50 but dominates p999.
        let mut hist = LogHistogram::for_latency_ms();
        for _ in 0..990 {
            hist.record(1.0);
        }
        for _ in 0..10 {
            hist.record(1000.0);
        }
        assert_within_bucket(hist.quantile(0.5).unwrap(), 1.0);
        assert_within_bucket(hist.quantile(0.999).unwrap(), 1000.0);
        // p99 sits right at the boundary: 990 of 1000 samples are fast.
        let p99 = hist.quantile(0.99).unwrap();
        assert!(p99 <= 1000.0);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty histogram: no quantiles at all.
        let empty = LogHistogram::for_latency_ms();
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.quantile(0.999), None);

        // Single sample: every percentile is that sample's bucket.
        let mut single = LogHistogram::for_latency_ms();
        single.record(42.0);
        let p50 = single.quantile(0.5).unwrap();
        assert_eq!(single.quantile(0.99).unwrap(), p50);
        assert_eq!(single.quantile(0.999).unwrap(), p50);
        assert_within_bucket(p50, 42.0);

        // A sample below the histogram floor lands in the underflow
        // bucket and reports as 0.
        let mut tiny = LogHistogram::for_latency_ms();
        tiny.record(0.0001);
        assert_eq!(tiny.quantile(0.999), Some(0.0));
    }
}
