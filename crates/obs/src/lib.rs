//! Observability for the MARP simulation workspace.
//!
//! The protocol crates emit causal [`marp_sim::TraceEvent::SpanStart`] /
//! [`SpanEnd`](marp_sim::TraceEvent::SpanEnd) /
//! [`SpanLink`](marp_sim::TraceEvent::SpanLink) records alongside the
//! existing protocol events; this crate turns a recorded
//! [`marp_sim::TraceLog`] into things a human can look at:
//!
//! * [`spans`] — reconstructs the span trees (request → dispatch →
//!   migrate×k → lock-acquired → update-quorum → commit);
//! * [`store`] — a versioned binary on-disk trace format
//!   (`--trace-out` writes it, `marp-trace` reads it);
//! * [`registry`] — per-node counters/histograms plus sampled gauges,
//!   mergeable across sweep shards, exportable as CSV;
//! * [`perfetto`] — Chrome `trace_event` JSON for `chrome://tracing` /
//!   the Perfetto UI, one track per node and per agent;
//! * [`journey`] — plain-text per-agent timelines;
//! * [`critical`] — the commit-latency critical-path analyzer
//!   (queueing / network / lock-wait / quorum-wait buckets);
//! * [`flags`] — shared `--trace-out` / `--metrics-out` flag handling
//!   for the lab binaries and examples.
//!
//! The **marp-prof** layer builds on those to answer *where does commit
//! cost go as the cluster grows*:
//!
//! * [`profile`] — folds a trace's span trees into a flamegraph-style
//!   profile (inclusive/exclusive time + shipped bytes per span path,
//!   per node and per agent, collapsed-stack text and JSON);
//! * [`sweep`] — per-phase scaling table across replica counts with a
//!   fitted growth exponent per metric;
//! * [`diff`] — stable, machine-readable comparison of two profiles or
//!   two sweeps (which phases grew, which exponents steepened);
//! * [`diagnose`] — rule-based cliff diagnosis over a sweep (lock-queue
//!   convoy, gossip amplification, migration storm vs Theorem 3,
//!   generic superlinear phases), ranked with cited evidence.
//!
//! Unlike the protocol crates this one is *not* sans-io: it owns file
//! I/O (trace stores, CSV dumps) on behalf of the binaries.

#![warn(missing_docs)]

pub mod critical;
pub mod diagnose;
pub mod diff;
pub mod flags;
pub mod journey;
pub mod json;
pub mod perfetto;
pub mod profile;
pub mod registry;
pub mod spans;
pub mod store;
pub mod sweep;

pub use critical::{CriticalPathReport, PathBreakdown};
pub use diagnose::{Diagnosis, Severity, Verdict};
pub use diff::{MetricDelta, PathDelta, ProfileDiff, SweepDiff};
pub use flags::ObsOptions;
pub use journey::Journeys;
pub use json::Json;
pub use perfetto::{export as perfetto_export, export_string as perfetto_export_string};
pub use profile::{PathStats, Profile};
pub use registry::{GaugeSample, MetricsRegistry, NodeMetrics};
pub use spans::{Span, SpanSet};
pub use store::{decode_trace, encode_trace, load_trace, save_trace};
pub use sweep::{SweepPoint, SweepReport, LT_ENTRIES_KIND, METRICS};
