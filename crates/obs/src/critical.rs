//! Commit-latency critical-path analysis.
//!
//! For every committed write the protocols record a `Request` span at the
//! accepting replica and link it to the coordination work that served it
//! (the agent's `Dispatch` span under MARP, an `UpdateQuorum` round span
//! under the message-passing baselines). Walking that span DAG lets us
//! attribute each write's end-to-end latency to four buckets:
//!
//! * **queueing** — request accepted but no agent/round working on it yet
//!   (batching delay, waiting behind an in-flight round);
//! * **network** — agent serialized state in flight between replicas
//!   (migration hops; zero for the baselines, whose message time is
//!   folded into quorum-wait);
//! * **lock-wait** — agent hosted on replicas, working through locking
//!   lists without holding the distributed lock yet;
//! * **quorum-wait** — update broadcast out, waiting for the validation
//!   quorum and the commit record to reach the home replica.
//!
//! The buckets are computed by clamped subtraction so they always sum to
//! exactly the total: no negative components, 100% coverage.

use crate::spans::{Span, SpanSet};
use marp_sim::{NodeId, SpanKind, TraceLog};
use std::fmt::Write as _;

/// Latency decomposition of one committed write.
#[derive(Debug, Clone, PartialEq)]
pub struct PathBreakdown {
    /// Client request id.
    pub request: u64,
    /// Replica that accepted the request.
    pub home: NodeId,
    /// End-to-end latency (request arrival to commit at home), ms.
    pub total_ms: f64,
    /// Time before any agent/round was working on the request, ms.
    pub queueing_ms: f64,
    /// Agent migration time on the wire, ms (0 for baselines).
    pub network_ms: f64,
    /// Lock-acquisition time net of migrations, ms (0 for baselines).
    pub lock_wait_ms: f64,
    /// Update/validation quorum plus commit propagation, ms.
    pub quorum_wait_ms: f64,
}

impl PathBreakdown {
    /// Fraction of the total latency the four buckets explain (1.0 by
    /// construction whenever the total is positive).
    pub fn coverage(&self) -> f64 {
        if self.total_ms <= 0.0 {
            return 1.0;
        }
        (self.queueing_ms + self.network_ms + self.lock_wait_ms + self.quorum_wait_ms)
            / self.total_ms
    }
}

/// Critical-path breakdowns for every committed write in a trace.
#[derive(Debug, Default)]
pub struct CriticalPathReport {
    /// One breakdown per completed write request, in request-id order.
    pub paths: Vec<PathBreakdown>,
}

impl CriticalPathReport {
    /// Analyze a recorded trace.
    pub fn from_trace(trace: &TraceLog) -> Self {
        let set = SpanSet::from_trace(trace);
        let mut paths: Vec<PathBreakdown> = set
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Request && s.end.is_some())
            .map(|request| decompose(request, &set))
            .collect();
        paths.sort_by_key(|p| p.request);
        CriticalPathReport { paths }
    }

    /// Lowest per-write coverage (1.0 unless something went wrong).
    pub fn min_coverage(&self) -> f64 {
        self.paths
            .iter()
            .map(PathBreakdown::coverage)
            .fold(1.0, f64::min)
    }

    /// Bucket sums across all writes: `(total, queueing, network,
    /// lock_wait, quorum_wait)` in ms.
    pub fn totals(&self) -> (f64, f64, f64, f64, f64) {
        self.paths.iter().fold((0.0, 0.0, 0.0, 0.0, 0.0), |acc, p| {
            (
                acc.0 + p.total_ms,
                acc.1 + p.queueing_ms,
                acc.2 + p.network_ms,
                acc.3 + p.lock_wait_ms,
                acc.4 + p.quorum_wait_ms,
            )
        })
    }

    /// Render a per-write table plus aggregate percentages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "request",
            "home",
            "total_ms",
            "queueing",
            "network",
            "lock_wait",
            "quorum_wait",
            "coverage"
        );
        for p in &self.paths {
            let _ = writeln!(
                out,
                "{:>10} {:>5} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8.1}%",
                p.request,
                p.home,
                p.total_ms,
                p.queueing_ms,
                p.network_ms,
                p.lock_wait_ms,
                p.quorum_wait_ms,
                p.coverage() * 100.0
            );
        }
        let (total, queueing, network, lock_wait, quorum_wait) = self.totals();
        if total > 0.0 {
            let pct = |x: f64| x / total * 100.0;
            let _ = writeln!(
                out,
                "\n{} committed write(s), {total:.3} ms total: \
                 queueing {:.1}%, network {:.1}%, lock-wait {:.1}%, quorum-wait {:.1}%",
                self.paths.len(),
                pct(queueing),
                pct(network),
                pct(lock_wait),
                pct(quorum_wait)
            );
        } else {
            let _ = writeln!(out, "\nno committed writes with spans in trace");
        }
        out
    }
}

/// Attribute one request span's latency to the four buckets.
fn decompose(request: &Span, set: &SpanSet) -> PathBreakdown {
    let end = request.end.expect("caller filtered on completed spans");
    let total = (end.as_millis_f64() - request.start.as_millis_f64()).max(0.0);
    let mut breakdown = PathBreakdown {
        request: request.a,
        home: request.start_node,
        total_ms: total,
        queueing_ms: total,
        network_ms: 0.0,
        lock_wait_ms: 0.0,
        quorum_wait_ms: 0.0,
    };

    // The coordination span serving this request: the earliest-starting
    // link target. Retried baseline rounds link once per round, so the
    // first round marks the end of pure queueing.
    let Some(work) = set
        .linked_from(request.id)
        .filter_map(|id| set.get(id))
        .min_by_key(|s| s.start)
    else {
        // No link recorded (e.g. trace truncated before dispatch):
        // everything stays attributed to queueing.
        return breakdown;
    };

    let clamp = |x: f64, hi: f64| x.clamp(0.0, hi);
    breakdown.queueing_ms = clamp(
        work.start.as_millis_f64() - request.start.as_millis_f64(),
        total,
    );
    let remaining = total - breakdown.queueing_ms;

    match work.kind {
        SpanKind::Dispatch => {
            // MARP: the lock phase runs from dispatch until the last
            // lock-acquisition round closed; inside it, migration spans
            // are network time and the rest is lock-wait. Everything
            // after the lock phase is the update quorum plus commit
            // propagation back to the home replica.
            let dispatched = work.start.as_millis_f64();
            let lock_end = set
                .children_of(work.id)
                .filter(|c| c.kind == SpanKind::LockAcquire)
                .filter_map(|c| c.end)
                .map(|t| t.as_millis_f64())
                .fold(dispatched, f64::max);
            let lock_phase = clamp(lock_end - dispatched, remaining);
            let migrate_total: f64 = set
                .children_of(work.id)
                .filter(|c| c.kind == SpanKind::Migrate)
                .filter_map(Span::duration_ms)
                .sum();
            breakdown.network_ms = clamp(migrate_total, lock_phase);
            breakdown.lock_wait_ms = lock_phase - breakdown.network_ms;
            breakdown.quorum_wait_ms = remaining - lock_phase;
        }
        SpanKind::Request
        | SpanKind::Migrate
        | SpanKind::LockAcquire
        | SpanKind::UpdateQuorum
        | SpanKind::Commit
        | SpanKind::Read => {
            // Baselines link the request straight to an UpdateQuorum
            // round: no mobile agent, so there is no migration or
            // lock-list time to separate out.
            breakdown.quorum_wait_ms = remaining;
        }
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, NodeId, SimTime, SpanId, TraceEvent, TraceLevel, TraceLog};

    fn start(
        log: &mut TraceLog,
        at: u64,
        node: NodeId,
        kind: SpanKind,
        a: u64,
        b: u64,
        parent: SpanId,
    ) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanStart {
                id: span_id(kind, a, b),
                parent,
                kind,
                a,
                b,
            },
        );
    }

    fn end(log: &mut TraceLog, at: u64, node: NodeId, kind: SpanKind, a: u64, b: u64) {
        log.push(
            SimTime::from_millis(at),
            node,
            TraceEvent::SpanEnd {
                id: span_id(kind, a, b),
                kind,
            },
        );
    }

    fn link(log: &mut TraceLog, at: u64, from: SpanId, to: SpanId) {
        log.push(
            SimTime::from_millis(at),
            0,
            TraceEvent::SpanLink { from, to },
        );
    }

    #[test]
    fn marp_write_decomposes_into_all_four_buckets() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        let agent = 42u64;
        let dispatch = span_id(SpanKind::Dispatch, agent, 0);
        // Request arrives at t=0, agent dispatched t=2 (queueing 2ms).
        start(&mut log, 0, 0, SpanKind::Request, 100, 0, 0);
        start(&mut log, 2, 0, SpanKind::Dispatch, agent, 0, 0);
        link(&mut log, 2, span_id(SpanKind::Request, 100, 0), dispatch);
        // Lock phase t=2..10 containing one 3ms migration.
        start(&mut log, 2, 0, SpanKind::LockAcquire, agent, 1, dispatch);
        start(
            &mut log,
            4,
            0,
            SpanKind::Migrate,
            agent,
            (1 << 32) | 1,
            dispatch,
        );
        end(&mut log, 7, 1, SpanKind::Migrate, agent, (1 << 32) | 1);
        end(&mut log, 10, 1, SpanKind::LockAcquire, agent, 1);
        // Quorum + commit back home at t=14.
        end(&mut log, 14, 0, SpanKind::Request, 100, 0);

        let report = CriticalPathReport::from_trace(&log);
        assert_eq!(report.paths.len(), 1);
        let p = &report.paths[0];
        assert_eq!(p.request, 100);
        assert_eq!(p.total_ms, 14.0);
        assert_eq!(p.queueing_ms, 2.0);
        assert_eq!(p.network_ms, 3.0);
        assert_eq!(p.lock_wait_ms, 5.0);
        assert_eq!(p.quorum_wait_ms, 4.0);
        assert_eq!(p.coverage(), 1.0);
        assert_eq!(report.min_coverage(), 1.0);
    }

    #[test]
    fn baseline_write_folds_everything_into_quorum_wait() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        let round = span_id(SpanKind::UpdateQuorum, 7, 3);
        start(&mut log, 0, 1, SpanKind::Request, 200, 1, 0);
        start(&mut log, 1, 1, SpanKind::UpdateQuorum, 7, 3, 0);
        link(&mut log, 1, span_id(SpanKind::Request, 200, 1), round);
        end(&mut log, 6, 1, SpanKind::UpdateQuorum, 7, 3);
        end(&mut log, 8, 1, SpanKind::Request, 200, 1);

        let report = CriticalPathReport::from_trace(&log);
        let p = &report.paths[0];
        assert_eq!(p.queueing_ms, 1.0);
        assert_eq!(p.network_ms, 0.0);
        assert_eq!(p.lock_wait_ms, 0.0);
        assert_eq!(p.quorum_wait_ms, 7.0);
        assert_eq!(p.coverage(), 1.0);
    }

    #[test]
    fn unlinked_request_counts_as_pure_queueing() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        start(&mut log, 0, 0, SpanKind::Request, 5, 0, 0);
        end(&mut log, 4, 0, SpanKind::Request, 5, 0);
        let report = CriticalPathReport::from_trace(&log);
        let p = &report.paths[0];
        assert_eq!(p.queueing_ms, 4.0);
        assert_eq!(p.coverage(), 1.0);
    }

    #[test]
    fn clamping_never_produces_negative_buckets() {
        // Pathological: lock round "ends" after the request completed,
        // and migrations longer than the whole lock phase.
        let mut log = TraceLog::new(TraceLevel::Protocol);
        let agent = 9u64;
        let dispatch = span_id(SpanKind::Dispatch, agent, 0);
        start(&mut log, 0, 0, SpanKind::Request, 300, 0, 0);
        start(&mut log, 1, 0, SpanKind::Dispatch, agent, 0, 0);
        link(&mut log, 1, span_id(SpanKind::Request, 300, 0), dispatch);
        start(&mut log, 1, 0, SpanKind::LockAcquire, agent, 1, dispatch);
        start(
            &mut log,
            1,
            0,
            SpanKind::Migrate,
            agent,
            (1 << 32) | 2,
            dispatch,
        );
        end(&mut log, 30, 2, SpanKind::Migrate, agent, (1 << 32) | 2);
        end(&mut log, 40, 2, SpanKind::LockAcquire, agent, 1);
        end(&mut log, 10, 0, SpanKind::Request, 300, 0);

        let report = CriticalPathReport::from_trace(&log);
        let p = &report.paths[0];
        assert!(p.queueing_ms >= 0.0);
        assert!(p.network_ms >= 0.0);
        assert!(p.lock_wait_ms >= 0.0);
        assert!(p.quorum_wait_ms >= 0.0);
        let sum = p.queueing_ms + p.network_ms + p.lock_wait_ms + p.quorum_wait_ms;
        assert!((sum - p.total_ms).abs() < 1e-9);
        assert_eq!(p.coverage(), 1.0);
    }

    #[test]
    fn report_renders_aggregate_line() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        start(&mut log, 0, 0, SpanKind::Request, 1, 0, 0);
        end(&mut log, 2, 0, SpanKind::Request, 1, 0);
        let text = CriticalPathReport::from_trace(&log).render();
        assert!(text.contains("1 committed write(s)"));
        assert!(text.contains("queueing 100.0%"));
    }
}
