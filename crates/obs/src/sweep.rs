//! Scale-sweep cost attribution (`marp-trace sweep`).
//!
//! One [`SweepPoint`] summarizes the same scenario run at one replica
//! count: the four critical-path phase totals (which by the clamped
//! decomposition of [`crate::critical`] sum exactly to total commit
//! latency), byte accounting split out of the kernel's per-wire-tag
//! buckets, migration counts, and the locking-knowledge entries agents
//! carried. A [`SweepReport`] strings points over N and fits a growth
//! exponent per per-commit metric (the slope of log cost against log N),
//! which is what the [`crate::diagnose`] rules run on.

use crate::critical::CriticalPathReport;
use crate::json::Json;
use marp_sim::{RunStats, TraceEvent, TraceLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The `Custom` trace-event kind the agent runtime emits per migration
/// with the number of locking-knowledge entries the shipped state
/// carried.
pub const LT_ENTRIES_KIND: &str = "lt-entries-carried";

/// Aggregated measurements of one sweep point (one replica count,
/// pooled over its seeds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepPoint {
    /// Replica count.
    pub n: usize,
    /// Seeds pooled into this point.
    pub seeds: Vec<u64>,
    /// Committed writes.
    pub commits: u64,
    /// Summed end-to-end commit latency, ms.
    pub total_ms: f64,
    /// Queueing phase total, ms.
    pub queueing_ms: f64,
    /// Network (agent migration) phase total, ms.
    pub network_ms: f64,
    /// Lock-wait phase total, ms.
    pub lock_wait_ms: f64,
    /// Quorum-wait phase total, ms.
    pub quorum_wait_ms: f64,
    /// Completed agent migrations.
    pub migrations: u64,
    /// Serialized agent-state bytes shipped (includes retries).
    pub migrated_bytes: u64,
    /// Bytes on the anti-entropy (gossip reconciliation) channel.
    pub gossip_bytes: u64,
    /// All bytes submitted to the transport.
    pub total_bytes: u64,
    /// Messages submitted to the transport.
    pub messages: u64,
    /// Locking-knowledge entries carried across all migrations.
    pub lt_entries_carried: u64,
}

/// Round to microsecond precision so rendered/JSON output is compact
/// and byte-stable.
fn round_us(ms: f64) -> f64 {
    (ms * 1000.0).round() / 1000.0
}

impl SweepPoint {
    /// Measure one point from its runs' traces and kernel stats.
    /// `gossip_tag` is the leading wire-tag byte of the anti-entropy
    /// channel (`marp_core::WIRE_TAG_SYNC` for MARP clusters).
    pub fn measure(
        n: usize,
        seeds: &[u64],
        traces: &[&TraceLog],
        stats: &[RunStats],
        gossip_tag: u8,
    ) -> SweepPoint {
        let mut point = SweepPoint {
            n,
            seeds: seeds.to_vec(),
            ..SweepPoint::default()
        };
        for s in stats {
            point.migrated_bytes += s.agent_bytes_migrated;
            point.gossip_bytes += s.bytes_for_kind(gossip_tag);
            point.total_bytes += s.bytes_sent;
            point.messages += s.messages_sent;
        }
        for trace in traces {
            let report = CriticalPathReport::from_trace(trace);
            let (total, queueing, network, lock_wait, quorum_wait) = report.totals();
            point.total_ms += total;
            point.queueing_ms += queueing;
            point.network_ms += network;
            point.lock_wait_ms += lock_wait;
            point.quorum_wait_ms += quorum_wait;
            for rec in trace.records() {
                match rec.event {
                    TraceEvent::UpdateCompleted { .. } => point.commits += 1,
                    TraceEvent::AgentMigrated { .. } => point.migrations += 1,
                    TraceEvent::Custom { kind, a, b: _ } => {
                        if kind == LT_ENTRIES_KIND {
                            point.lt_entries_carried += a;
                        }
                    }
                    TraceEvent::MsgSent { .. }
                    | TraceEvent::MsgDelivered { .. }
                    | TraceEvent::MsgDropped { .. }
                    | TraceEvent::NodeDown(..)
                    | TraceEvent::NodeUp(..)
                    | TraceEvent::RequestArrived { .. }
                    | TraceEvent::ReadServed { .. }
                    | TraceEvent::AgentDispatched { .. }
                    | TraceEvent::AgentMigrateFailed { .. }
                    | TraceEvent::AgentStateShipped { .. }
                    | TraceEvent::ReplicaDeclaredUnavailable { .. }
                    | TraceEvent::LockRequested { .. }
                    | TraceEvent::LockGranted { .. }
                    | TraceEvent::UpdateSent { .. }
                    | TraceEvent::UpdateAcked { .. }
                    | TraceEvent::WinAborted { .. }
                    | TraceEvent::CommitApplied { .. }
                    | TraceEvent::AgentDisposed { .. }
                    | TraceEvent::SpanStart { .. }
                    | TraceEvent::SpanEnd { .. }
                    | TraceEvent::SpanLink { .. } => {}
                }
            }
        }
        point.queueing_ms = round_us(point.queueing_ms);
        point.network_ms = round_us(point.network_ms);
        point.lock_wait_ms = round_us(point.lock_wait_ms);
        point.quorum_wait_ms = round_us(point.quorum_wait_ms);
        // Re-derive the total from the rounded phases so the clamped
        // decomposition (phases sum exactly to the total) survives the
        // per-field rounding; the drift vs the raw total is < 2 µs.
        point.total_ms = round_us(point.phase_sum_ms());
        point
    }

    /// Sum of the four phase buckets, ms (equals [`Self::total_ms`] up
    /// to the microsecond rounding — the clamped-decomposition
    /// invariant).
    pub fn phase_sum_ms(&self) -> f64 {
        self.queueing_ms + self.network_ms + self.lock_wait_ms + self.quorum_wait_ms
    }

    /// Divide a raw total by the commit count (0 when nothing committed).
    pub fn per_commit(&self, value: f64) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            value / self.commits as f64
        }
    }
}

/// Extracts one scalar metric from a sweep point.
pub type MetricFn = fn(&SweepPoint) -> f64;

/// The per-commit metrics a sweep fits growth exponents for, as
/// `(name, extractor)` rows. Order is the presentation order.
pub const METRICS: &[(&str, MetricFn)] = &[
    ("total-ms", |p| p.per_commit(p.total_ms)),
    ("queueing-ms", |p| p.per_commit(p.queueing_ms)),
    ("network-ms", |p| p.per_commit(p.network_ms)),
    ("lock-wait-ms", |p| p.per_commit(p.lock_wait_ms)),
    ("quorum-wait-ms", |p| p.per_commit(p.quorum_wait_ms)),
    ("bytes", |p| p.per_commit(p.total_bytes as f64)),
    ("migrated-bytes", |p| p.per_commit(p.migrated_bytes as f64)),
    ("gossip-bytes", |p| p.per_commit(p.gossip_bytes as f64)),
    ("messages", |p| p.per_commit(p.messages as f64)),
    ("migrations", |p| p.per_commit(p.migrations as f64)),
    ("lt-entries", |p| p.per_commit(p.lt_entries_carried as f64)),
];

/// A sweep over replica counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Points in ascending replica-count order.
    pub points: Vec<SweepPoint>,
}

/// Least-squares slope of `ln(v)` against `ln(n)`: the growth exponent
/// of `v ∝ n^k`. `None` with fewer than two positive samples.
fn fit_exponent(samples: &[(f64, f64)]) -> Option<f64> {
    let valid: Vec<(f64, f64)> = samples
        .iter()
        .filter(|&&(n, v)| n > 0.0 && v > 0.0)
        .map(|&(n, v)| (n.ln(), v.ln()))
        .collect();
    if valid.len() < 2 {
        return None;
    }
    let count = valid.len() as f64;
    let mean_x = valid.iter().map(|&(x, _)| x).sum::<f64>() / count;
    let mean_y = valid.iter().map(|&(_, y)| y).sum::<f64>() / count;
    let sxx: f64 = valid.iter().map(|&(x, _)| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = valid
        .iter()
        .map(|&(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    Some((sxy / sxx * 10_000.0).round() / 10_000.0)
}

impl SweepReport {
    /// Build a report from measured points (sorted by replica count).
    pub fn new(mut points: Vec<SweepPoint>) -> Self {
        points.sort_by_key(|p| p.n);
        SweepReport { points }
    }

    /// The point with the highest replica count.
    pub fn top_point(&self) -> Option<&SweepPoint> {
        self.points.last()
    }

    /// Fitted growth exponent of one named per-commit metric.
    pub fn exponent(&self, metric: &str) -> Option<f64> {
        let extract = METRICS
            .iter()
            .find(|(name, _)| *name == metric)
            .map(|&(_, f)| f)?;
        let samples: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.n as f64, extract(p)))
            .collect();
        fit_exponent(&samples)
    }

    /// All `(metric, exponent)` rows in [`METRICS`] order.
    pub fn exponents(&self) -> Vec<(&'static str, Option<f64>)> {
        METRICS
            .iter()
            .map(|&(name, _)| (name, self.exponent(name)))
            .collect()
    }

    /// Render the per-phase scaling table plus the fitted exponents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>3} {:>8} {:>12} {:>11} {:>11} {:>11} {:>11} {:>10} {:>12} {:>12} {:>10} {:>10}",
            "n",
            "commits",
            "total_ms",
            "queueing",
            "network",
            "lock_wait",
            "quorum_wait",
            "migrations",
            "bytes",
            "gossip_b",
            "lt_entries",
            "phase_sum"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>3} {:>8} {:>12.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>10} {:>12} {:>12} {:>10} {:>10.3}",
                p.n,
                p.commits,
                p.total_ms,
                p.queueing_ms,
                p.network_ms,
                p.lock_wait_ms,
                p.quorum_wait_ms,
                p.migrations,
                p.total_bytes,
                p.gossip_bytes,
                p.lt_entries_carried,
                p.phase_sum_ms()
            );
        }
        let _ = writeln!(
            out,
            "\nper-commit metrics and fitted growth exponents (v ~ n^k):"
        );
        for (name, exponent) in self.exponents() {
            let extract = METRICS
                .iter()
                .find(|(metric, _)| *metric == name)
                .map(|&(_, f)| f)
                .expect("name came from METRICS");
            let values: Vec<String> = self
                .points
                .iter()
                .map(|p| format!("n{}={:.3}", p.n, extract(p)))
                .collect();
            let k = exponent
                .map(|k| format!("{k:.4}"))
                .unwrap_or_else(|| String::from("-"));
            let _ = writeln!(out, "  {name:<16} k={k:<8} {}", values.join(" "));
        }
        out
    }

    /// Serialize as deterministic JSON (schema `marp-prof/sweep/v1`).
    pub fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                Json::obj([
                    ("n", Json::Num(p.n as f64)),
                    (
                        "seeds",
                        Json::Arr(p.seeds.iter().map(|&s| Json::Num(s as f64)).collect()),
                    ),
                    ("commits", Json::Num(p.commits as f64)),
                    ("total_ms", Json::Num(p.total_ms)),
                    ("queueing_ms", Json::Num(p.queueing_ms)),
                    ("network_ms", Json::Num(p.network_ms)),
                    ("lock_wait_ms", Json::Num(p.lock_wait_ms)),
                    ("quorum_wait_ms", Json::Num(p.quorum_wait_ms)),
                    ("migrations", Json::Num(p.migrations as f64)),
                    ("migrated_bytes", Json::Num(p.migrated_bytes as f64)),
                    ("gossip_bytes", Json::Num(p.gossip_bytes as f64)),
                    ("total_bytes", Json::Num(p.total_bytes as f64)),
                    ("messages", Json::Num(p.messages as f64)),
                    ("lt_entries_carried", Json::Num(p.lt_entries_carried as f64)),
                ])
            })
            .collect();
        let exponents: BTreeMap<String, Json> = self
            .exponents()
            .into_iter()
            .map(|(name, k)| (String::from(name), k.map(Json::Num).unwrap_or(Json::Null)))
            .collect();
        Json::obj([
            ("schema", Json::Str(String::from("marp-prof/sweep/v1"))),
            ("points", Json::Arr(points)),
            ("exponents", Json::Obj(exponents)),
        ])
    }

    /// Parse a report back from its JSON form.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        if doc.get("schema").and_then(Json::as_str) != Some("marp-prof/sweep/v1") {
            return Err(String::from("not a marp-prof/sweep/v1 document"));
        }
        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("missing points array")?;
        let num = |j: &Json, field: &str| -> Result<f64, String> {
            j.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("missing numeric field '{field}'"))
        };
        let parsed: Result<Vec<SweepPoint>, String> = points
            .iter()
            .map(|j| {
                Ok(SweepPoint {
                    n: num(j, "n")? as usize,
                    seeds: j
                        .get("seeds")
                        .and_then(Json::as_arr)
                        .map(|seeds| {
                            seeds
                                .iter()
                                .filter_map(Json::as_num)
                                .map(|s| s as u64)
                                .collect()
                        })
                        .unwrap_or_default(),
                    commits: num(j, "commits")? as u64,
                    total_ms: num(j, "total_ms")?,
                    queueing_ms: num(j, "queueing_ms")?,
                    network_ms: num(j, "network_ms")?,
                    lock_wait_ms: num(j, "lock_wait_ms")?,
                    quorum_wait_ms: num(j, "quorum_wait_ms")?,
                    migrations: num(j, "migrations")? as u64,
                    migrated_bytes: num(j, "migrated_bytes")? as u64,
                    gossip_bytes: num(j, "gossip_bytes")? as u64,
                    total_bytes: num(j, "total_bytes")? as u64,
                    messages: num(j, "messages")? as u64,
                    lt_entries_carried: num(j, "lt_entries_carried")? as u64,
                })
            })
            .collect();
        Ok(SweepReport::new(parsed?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::{span_id, SimTime, SpanKind, TraceLevel};

    /// A point with every cost field following `scale^power`.
    fn synthetic_point(n: usize, power: f64) -> SweepPoint {
        let v = (n as f64).powf(power);
        SweepPoint {
            n,
            seeds: vec![1],
            commits: 10,
            total_ms: 10.0 * v,
            queueing_ms: 2.0 * v,
            network_ms: 3.0 * v,
            lock_wait_ms: 4.0 * v,
            quorum_wait_ms: 1.0 * v,
            migrations: (10.0 * v) as u64,
            migrated_bytes: (1000.0 * v) as u64,
            gossip_bytes: (100.0 * v) as u64,
            total_bytes: (2000.0 * v) as u64,
            messages: (50.0 * v) as u64,
            lt_entries_carried: (20.0 * v) as u64,
        }
    }

    #[test]
    fn exponent_recovers_synthetic_power_law() {
        let report = SweepReport::new(vec![
            synthetic_point(3, 2.0),
            synthetic_point(5, 2.0),
            synthetic_point(9, 2.0),
        ]);
        let k = report.exponent("total-ms").unwrap();
        assert!((k - 2.0).abs() < 0.01, "k = {k}");
        let k = report.exponent("lock-wait-ms").unwrap();
        assert!((k - 2.0).abs() < 0.01, "k = {k}");
    }

    #[test]
    fn exponent_is_none_for_flat_or_missing_data() {
        let report = SweepReport::new(vec![synthetic_point(3, 1.0)]);
        assert_eq!(report.exponent("total-ms"), None); // one point
        assert_eq!(report.exponent("no-such-metric"), None);
    }

    #[test]
    fn measure_counts_commits_migrations_and_lt_entries() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        log.push(
            SimTime::from_millis(1),
            0,
            TraceEvent::Custom {
                kind: LT_ENTRIES_KIND,
                a: 7,
                b: 42,
            },
        );
        log.push(
            SimTime::from_millis(2),
            1,
            TraceEvent::AgentMigrated {
                agent: 42,
                from: 0,
                to: 1,
                hops: 1,
            },
        );
        log.push(
            SimTime::from_millis(3),
            0,
            TraceEvent::Custom {
                kind: "unrelated",
                a: 99,
                b: 0,
            },
        );
        log.push(
            SimTime::from_millis(9),
            0,
            TraceEvent::UpdateCompleted {
                request: 1,
                home: 0,
                arrived: SimTime::from_millis(0),
                dispatched: SimTime::from_millis(1),
                locked: SimTime::from_millis(5),
                visits: 2,
            },
        );
        let mut by_kind = [0u64; 16];
        by_kind[6] = 44;
        let stats = RunStats {
            bytes_sent: 500,
            agent_bytes_migrated: 120,
            bytes_by_kind: by_kind,
            messages_sent: 9,
            ..RunStats::default()
        };
        let point = SweepPoint::measure(3, &[7], &[&log], &[stats], 6);
        assert_eq!(point.commits, 1);
        assert_eq!(point.migrations, 1);
        assert_eq!(point.lt_entries_carried, 7);
        assert_eq!(point.gossip_bytes, 44);
        assert_eq!(point.migrated_bytes, 120);
        assert_eq!(point.total_bytes, 500);
    }

    #[test]
    fn phase_sum_matches_total_from_a_real_decomposition() {
        let mut log = TraceLog::new(TraceLevel::Protocol);
        log.push(
            SimTime::from_millis(0),
            0,
            TraceEvent::SpanStart {
                id: span_id(SpanKind::Request, 1, 0),
                parent: 0,
                kind: SpanKind::Request,
                a: 1,
                b: 0,
            },
        );
        log.push(
            SimTime::from_millis(8),
            0,
            TraceEvent::SpanEnd {
                id: span_id(SpanKind::Request, 1, 0),
                kind: SpanKind::Request,
            },
        );
        let point = SweepPoint::measure(3, &[1], &[&log], &[RunStats::default()], 6);
        assert!((point.phase_sum_ms() - point.total_ms).abs() < 1e-6);
        assert_eq!(point.total_ms, 8.0);
    }

    #[test]
    fn json_roundtrip_preserves_points_and_exponents() {
        let report = SweepReport::new(vec![
            synthetic_point(3, 1.5),
            synthetic_point(5, 1.5),
            synthetic_point(9, 1.5),
        ]);
        let text = report.to_json().render();
        let back = SweepReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn render_contains_table_and_exponent_lines() {
        let report = SweepReport::new(vec![synthetic_point(3, 1.0), synthetic_point(5, 1.0)]);
        let text = report.render();
        assert!(text.contains("phase_sum"));
        assert!(text.contains("lock-wait-ms"));
        assert!(text.contains("k="));
    }
}
