//! Server-side MARP state: what a visiting agent touches locally, and
//! the handlers for the UPDATE / COMMIT / RELEASE / LL-query messages
//! (the paper's Algorithm 2).

use crate::config::{ChaosMode, MarpConfig};
use crate::gossip::GossipBoard;
use crate::lt::{pack_horizon_slot, LockingTable, MAX_HORIZON_KEY};
use crate::msg::{AgentReply, UpdateMsg};
use marp_agent::AgentId;
use marp_net::RoutingTable;
use marp_replica::{LlSnapshot, ServerCore, UpdatedList};
use marp_sim::{Context, NodeId, SimTime, TraceEvent};
use std::collections::BTreeMap;
use std::time::Duration;

/// What a visiting agent reads from the local server in one interaction
/// (the in-situ equivalent of a round of messages — the mobile-agent
/// advantage the paper builds on).
#[derive(Debug, Clone)]
pub struct VisitInfo {
    /// The server's LL right after the agent's lock request was
    /// appended.
    pub snapshot: LlSnapshot,
    /// The gossip board contents (empty table when gossip is disabled).
    pub board: LockingTable,
    /// The server's Updated List.
    pub ul: UpdatedList,
}

/// The MARP-specific state of one replica server.
pub struct MarpServerState {
    /// Protocol-independent server substrate.
    pub core: ServerCore,
    /// Information-sharing blackboard (§3.3).
    pub board: GossipBoard,
    /// Agent-transfer cost estimates (§3.2).
    pub routing: RoutingTable,
    gossip_enabled: bool,
    reserve_lease: Duration,
    /// Reservation holder per object key: winners of different keys
    /// validate and commit concurrently, so each key carries its own
    /// reservation.
    reserved: BTreeMap<u64, (AgentId, SimTime)>,
    chaos: ChaosMode,
    /// Last knowledge horizon advertised by each peer (piggybacked on
    /// its migration acks), as packed `key << 16 | server` slots.
    /// Agents migrating from here delta-encode their Locking Tables
    /// against the destination's entry for their key.
    peer_horizons: BTreeMap<NodeId, BTreeMap<u64, u64>>,
    /// Incarnation fence per client request: the highest incarnation
    /// this server positively acked for each request it has seen, plus
    /// when (for pruning). A regenerated agent carries a bumped
    /// incarnation; once any server acks it, the original — now a
    /// zombie — can no longer assemble a quorum through that server.
    fences: BTreeMap<u64, (u32, SimTime)>,
}

impl MarpServerState {
    /// Build the server state for node `me`.
    pub fn new(core: ServerCore, routing: RoutingTable, cfg: &MarpConfig) -> Self {
        MarpServerState {
            core,
            board: GossipBoard::new(),
            routing,
            gossip_enabled: cfg.gossip,
            reserve_lease: cfg.reserve_lease,
            reserved: BTreeMap::new(),
            chaos: cfg.chaos,
            peer_horizons: BTreeMap::new(),
            fences: BTreeMap::new(),
        }
    }

    /// This server's knowledge horizon: the highest locking-list
    /// snapshot version it holds per `(key, server)` packed slot — its
    /// own live lock table plus everything on the gossip board.
    /// Advertised in migration acks so senders can delta-encode agent
    /// state shipped here. The key-0 slot for this server is always
    /// present (even while virgin), matching the pre-keyspace format
    /// byte-for-byte in single-key deployments.
    pub fn horizon(&self) -> BTreeMap<u64, u64> {
        let mut horizon = BTreeMap::new();
        let me = self.core.me();
        if self.gossip_enabled {
            for key in self.board.keys() {
                if key > MAX_HORIZON_KEY {
                    continue;
                }
                let Some(table) = self.board.contents(key) else {
                    continue;
                };
                for (server, version) in table.horizon() {
                    let slot = pack_horizon_slot(key, server);
                    horizon
                        .entry(slot)
                        .and_modify(|v: &mut u64| *v = (*v).max(version))
                        .or_insert(version);
                }
            }
        }
        let mut own_keys: Vec<u64> = self
            .core
            .ll
            .keys()
            .filter(|&k| k != 0 && k <= MAX_HORIZON_KEY)
            .collect();
        own_keys.push(0);
        for key in own_keys {
            let own = self.core.ll.version(key);
            horizon
                .entry(pack_horizon_slot(key, me))
                .and_modify(|v| *v = (*v).max(own))
                .or_insert(own);
        }
        horizon
    }

    /// Record the knowledge horizon a peer advertised in a migration
    /// ack.
    pub fn record_peer_horizon(&mut self, peer: NodeId, horizon: BTreeMap<u64, u64>) {
        self.peer_horizons.insert(peer, horizon);
    }

    /// The last (packed) horizon `peer` advertised, if any.
    pub fn peer_horizon(&self, peer: NodeId) -> Option<&BTreeMap<u64, u64>> {
        self.peer_horizons.get(&peer)
    }

    /// Whether gossip boards are enabled (E10 ablation).
    pub fn gossip_enabled(&self) -> bool {
        self.gossip_enabled
    }

    /// Current reservation holder for `key`, if any (for inspection).
    pub fn reserved_for(&self, key: u64) -> Option<AgentId> {
        self.reserved.get(&key).map(|&(agent, _)| agent)
    }

    /// A visiting agent requests the lock on its object key and reads
    /// the local coordination state (paper Algorithm 2, "upon arrival
    /// of a mobile agent").
    pub fn visit(&mut self, agent: AgentId, key: u64, now: SimTime, here: NodeId) -> VisitInfo {
        self.core.ll.purge_expired(now);
        // A finished agent (listed in the UL) must never re-enter the
        // queue: a stale clone from a duplicated migration would
        // otherwise enqueue a permanently unclaimable entry. The clone
        // recognizes itself in the returned UL and disposes.
        if !self.core.ul.contains(agent) {
            self.core
                .ll
                .request(key, agent, now, self.core.lock_lease(), here);
            if self.chaos.lifo_insert() {
                // Seeded bug (checker self-test): jump the FIFO queue.
                self.core.ll.list_mut(key).chaos_promote_to_front(agent);
            }
        }
        VisitInfo {
            snapshot: self.core.ll.snapshot(key, now),
            board: if self.gossip_enabled {
                self.board.contents(key).cloned().unwrap_or_default()
            } else {
                LockingTable::new()
            },
            ul: self.core.ul.clone(),
        }
    }

    /// A visiting agent leaves its accumulated locking information
    /// about its key on the board (no-op when gossip is disabled).
    pub fn deposit_gossip(&mut self, key: u64, lt: &LockingTable) {
        if self.gossip_enabled {
            self.board.deposit(key, lt);
        }
    }

    /// Estimated agent-transfer cost to another server, in ms.
    pub fn route_cost(&self, to: NodeId) -> f64 {
        self.routing.cost(to)
    }

    fn reservation_blocks(&mut self, key: u64, agent: AgentId, now: SimTime) -> bool {
        match self.reserved.get(&key) {
            Some(&(holder, expires)) if holder != agent => {
                if expires <= now {
                    self.reserved.remove(&key);
                    false
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    /// Handle an UPDATE claim (validation + reservation). Returns the
    /// acknowledgement to send back to the claimant.
    pub fn handle_update(&mut self, msg: &UpdateMsg, ctx: &mut dyn Context) -> AgentReply {
        let now = ctx.now();
        // Batches are key-uniform (the node splits mixed batches at
        // dispatch), so the claim's object key is its first request's.
        let key = msg.requests.first().map_or(0, |r| r.key);
        self.core.ll.purge_expired(now);
        // Refusal reasons are traced for diagnosability: 1 = reserved
        // for another claimant, 2 = claimant absent from the LL,
        // 3 = an agent ranked above the claimant is missing from its
        // certificate, 4 = not top and no certificate offered,
        // 5 = the claim's incarnation is below a fence (a regenerated
        // successor has been acked here), 6 = every carried request has
        // already committed here. 5 and 6 mark the claimant superseded:
        // the ack carries `fenced: true` and the agent must dispose.
        let mut refusal: u64 = 0;
        if msg.requests.iter().any(|r| {
            self.fences
                .get(&r.id)
                .is_some_and(|&(inc, _)| inc > msg.incarnation)
        }) {
            refusal = 5;
        } else if !msg.requests.is_empty()
            && msg
                .requests
                .iter()
                .all(|r| self.core.store.request_applied(r.id))
        {
            refusal = 6;
        }
        let fenced = refusal != 0;
        let positive = if fenced {
            false
        } else if self.chaos.blind_acks() {
            // Seeded bug (checker self-test): ack without validating or
            // reserving.
            true
        } else if self.reservation_blocks(key, msg.agent, now) {
            refusal = 1;
            false
        } else if self.core.ll.top(key) == Some(msg.agent) {
            true
        } else if let Some(cert) = &msg.tie_certificate {
            match self.core.ll.rank_of(key, msg.agent) {
                Some(rank) => {
                    // Entries of agents our UL says already finished are
                    // stale (e.g. a commit applied via anti-entropy
                    // before this purge) and do not block a claim.
                    let entries = self.core.ll.list(key).map_or(&[][..], |ll| ll.entries());
                    let ok = entries[..rank]
                        .iter()
                        .all(|e| cert.contains(&e.agent) || self.core.ul.contains(e.agent));
                    if !ok {
                        refusal = 3;
                    }
                    ok
                }
                None => {
                    refusal = 2;
                    false
                }
            }
        } else {
            refusal = 4;
            false
        };
        if !positive {
            ctx.trace(TraceEvent::Custom {
                kind: "update-refused",
                a: msg.agent.key(),
                b: (u64::from(self.core.me()) << 8) | refusal,
            });
        }
        if positive && !self.chaos.blind_acks() {
            self.reserved
                .insert(key, (msg.agent, now + self.reserve_lease));
            // Raise the fences: from now on, only this incarnation (or
            // a later regeneration) of the carried requests can gather
            // a positive ack here.
            for r in &msg.requests {
                let fence = self.fences.entry(r.id).or_insert((msg.incarnation, now));
                fence.0 = fence.0.max(msg.incarnation);
                fence.1 = now;
            }
        }
        ctx.trace(TraceEvent::UpdateAcked {
            agent: msg.agent.key(),
            node: self.core.me(),
            positive,
        });
        AgentReply::UpdateAck {
            node: self.core.me(),
            attempt: msg.attempt,
            positive,
            fenced,
            store_version: self.core.store.applied_version_for(key),
            last_update: self.core.store.last_update_time_for(key),
        }
    }

    /// Handle a COMMIT: apply the records, retire the winner from its
    /// key's queue into the UL, clear its reservation, and report the
    /// remaining queue members (with their last known hosts) so the
    /// node can push change notifications to them.
    pub fn handle_commit(
        &mut self,
        agent: AgentId,
        records: Vec<marp_replica::CommitRecord>,
        ctx: &mut dyn Context,
    ) -> Vec<(NodeId, AgentId)> {
        // Single-key batches: the winner's object key is its records'.
        let key = records.first().map_or(0, |r| r.key);
        self.core.apply_commits(records, ctx);
        self.core.ll.remove(key, agent);
        self.core.ul.record(agent, ctx.now());
        if self.reserved.get(&key).map(|&(holder, _)| holder) == Some(agent) {
            self.reserved.remove(&key);
        }
        // Keep the local board fresh so future visitors see this change.
        if self.gossip_enabled {
            let snapshot = self.core.ll.snapshot(key, ctx.now());
            self.board.post(key, self.core.me(), snapshot);
        }
        self.core.ll.list(key).map_or_else(Vec::new, |ll| {
            ll.entries()
                .iter()
                .map(|e| (e.last_host, e.agent))
                .collect()
        })
    }

    /// Handle a RELEASE from an aborting claimant (a RELEASE names no
    /// key; agent ids are globally unique, so clearing every
    /// reservation the agent holds is unambiguous).
    pub fn handle_release(&mut self, agent: AgentId) {
        self.reserved.retain(|_, &mut (holder, _)| holder != agent);
    }

    /// Handle a parked agent's LL query for its key: refresh its lease
    /// (without creating an entry at servers it never visited) and
    /// return fresh locking information.
    pub fn handle_ll_query(
        &mut self,
        agent: AgentId,
        key: u64,
        reply_to: NodeId,
        now: SimTime,
    ) -> AgentReply {
        self.core.ll.purge_expired(now);
        self.core
            .ll
            .refresh(key, agent, now, self.core.lock_lease(), reply_to);
        self.ll_info(key, now)
    }

    /// Build an `LlInfo` reply about `key` from the current state.
    pub fn ll_info(&self, key: u64, now: SimTime) -> AgentReply {
        AgentReply::LlInfo {
            node: self.core.me(),
            snapshot: self.core.ll.snapshot(key, now),
            board: if self.gossip_enabled {
                self.board.contents(key).cloned().unwrap_or_default()
            } else {
                LockingTable::new()
            },
            ul: self.core.ul.clone(),
        }
    }

    /// Periodic maintenance: purge expired LL entries and reservations,
    /// and prune Updated List entries and incarnation fences too old for
    /// any stale claimant to still be live (bounded by the lock lease;
    /// the store's request dedup remains the permanent backstop).
    pub fn maintain(&mut self, ctx: &mut dyn Context) {
        self.core.purge_expired_locks(ctx);
        let horizon = ctx.now().checked_since(SimTime::ZERO).unwrap_or_default();
        if horizon > self.core.lock_lease() {
            let cutoff = SimTime::ZERO + (horizon - self.core.lock_lease());
            self.core.ul.prune_before(cutoff);
            self.fences.retain(|_, &mut (_, at)| at >= cutoff);
        }
        let now = ctx.now();
        self.reserved.retain(|_, &mut (_, expires)| expires > now);
    }

    /// Crash recovery: volatile coordination state resets.
    pub fn on_recover(&mut self) {
        self.core.on_recover();
        self.board.clear();
        self.reserved.clear();
        self.peer_horizons.clear();
        self.fences.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::wrap_sync;
    use bytes::Bytes;
    use marp_net::Topology;
    use marp_replica::{ServerConfig, WriteRequest};
    use marp_sim::TimerId;

    struct TestCtx {
        now: SimTime,
        traced: Vec<TraceEvent>,
    }
    impl Context for TestCtx {
        fn now(&self) -> SimTime {
            self.now
        }
        fn me(&self) -> NodeId {
            0
        }
        fn send(&mut self, _to: NodeId, _msg: Bytes) {}
        fn set_timer(&mut self, _after: Duration, _tag: u64) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _id: TimerId) {}
        fn trace(&mut self, event: TraceEvent) {
            self.traced.push(event);
        }
        fn halt(&mut self) {}
    }

    fn state() -> MarpServerState {
        let cfg = MarpConfig::new(3);
        let topo = Topology::uniform_lan(3, Duration::from_millis(2));
        MarpServerState::new(
            ServerCore::new(0, ServerConfig::default(), wrap_sync),
            RoutingTable::from_topology(0, &topo),
            &cfg,
        )
    }

    fn aid(home: u16, ms: u64) -> AgentId {
        AgentId::new(home, SimTime::from_millis(ms), 0)
    }

    fn update_msg(agent: AgentId, cert: Option<Vec<AgentId>>) -> UpdateMsg {
        UpdateMsg {
            agent,
            attempt: 1,
            incarnation: 0,
            reply_to: agent.home,
            requests: vec![WriteRequest {
                id: 1,
                client: 9,
                key: 1,
                value: 1,
                arrived: SimTime::ZERO,
            }],
            tie_certificate: cert,
        }
    }

    fn positive(reply: &AgentReply) -> bool {
        match reply {
            AgentReply::UpdateAck { positive, .. } => *positive,
            _ => panic!("expected ack"),
        }
    }

    fn fenced(reply: &AgentReply) -> bool {
        match reply {
            AgentReply::UpdateAck { fenced, .. } => *fenced,
            _ => panic!("expected ack"),
        }
    }

    #[test]
    fn visit_appends_and_returns_snapshot() {
        let mut state = state();
        let a = aid(1, 1);
        let info = state.visit(a, 1, SimTime::from_millis(1), 1);
        assert_eq!(info.snapshot.queue, vec![a]);
        assert!(info.ul.is_empty());
        // Gossip on by default: board empty until someone deposits.
        assert_eq!(info.board.known_servers(), 0);
    }

    #[test]
    fn update_from_top_agent_is_positive_and_reserves() {
        let mut state = state();
        let a = aid(1, 1);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(2),
            traced: vec![],
        };
        let ack = state.handle_update(&update_msg(a, None), &mut ctx);
        assert!(positive(&ack));
        assert_eq!(state.reserved_for(1), Some(a));
    }

    #[test]
    fn update_from_non_top_without_certificate_is_negative() {
        let mut state = state();
        let a = aid(1, 1);
        let b = aid(2, 2);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        state.visit(b, 1, SimTime::from_millis(2), 2);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(3),
            traced: vec![],
        };
        let ack = state.handle_update(&update_msg(b, None), &mut ctx);
        assert!(!positive(&ack));
        assert_eq!(state.reserved_for(1), None);
    }

    #[test]
    fn certificate_validates_tie_claims() {
        let mut state = state();
        let a = aid(1, 1);
        let b = aid(2, 2);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        state.visit(b, 1, SimTime::from_millis(2), 2);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(3),
            traced: vec![],
        };
        // b claims with a certificate naming a — valid.
        let ack = state.handle_update(&update_msg(b, Some(vec![a])), &mut ctx);
        assert!(positive(&ack));
        // A certificate missing a does not validate for a third agent.
        let c = aid(3, 3);
        state.visit(c, 1, SimTime::from_millis(3), 0);
        state.handle_release(b);
        let ack = state.handle_update(&update_msg(c, Some(vec![b])), &mut ctx);
        assert!(!positive(&ack));
    }

    #[test]
    fn reservation_blocks_other_claimants_until_release() {
        let mut state = state();
        let a = aid(1, 1);
        let b = aid(2, 2);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        state.visit(b, 1, SimTime::from_millis(2), 2);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(3),
            traced: vec![],
        };
        assert!(positive(
            &state.handle_update(&update_msg(a, None), &mut ctx)
        ));
        // Even a valid certificate claim is blocked while reserved.
        let ack = state.handle_update(&update_msg(b, Some(vec![a])), &mut ctx);
        assert!(!positive(&ack));
        state.handle_release(a);
        let ack = state.handle_update(&update_msg(b, Some(vec![a])), &mut ctx);
        assert!(positive(&ack));
    }

    #[test]
    fn reservation_expires_after_lease() {
        let mut state = state();
        let a = aid(1, 1);
        let b = aid(2, 2);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        state.visit(b, 1, SimTime::from_millis(2), 2);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(3),
            traced: vec![],
        };
        assert!(positive(
            &state.handle_update(&update_msg(a, None), &mut ctx)
        ));
        // Well past the 5 s reservation lease.
        ctx.now = SimTime::from_secs(10);
        let ack = state.handle_update(&update_msg(b, Some(vec![a])), &mut ctx);
        assert!(positive(&ack));
    }

    #[test]
    fn commit_retires_winner_and_reports_notify_targets() {
        let mut state = state();
        let a = aid(1, 1);
        let b = aid(2, 2);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        state.visit(b, 1, SimTime::from_millis(2), 2);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(5),
            traced: vec![],
        };
        let record = marp_replica::CommitRecord {
            version: 1,
            key: 1,
            value: 7,
            agent: a.key(),
            request: 1,
            committed_at: ctx.now,
        };
        let notify = state.handle_commit(a, vec![record], &mut ctx);
        assert_eq!(notify, vec![(2, b)]);
        assert!(!state.core.ll.contains(1, a));
        assert!(state.core.ul.contains(a));
        assert_eq!(state.core.store.applied_version(), 1);
    }

    #[test]
    fn ll_query_refreshes_but_does_not_enqueue() {
        let mut state = state();
        let a = aid(1, 1);
        let stranger = aid(7, 7);
        state.visit(a, 1, SimTime::from_millis(1), 1);
        let reply = state.handle_ll_query(stranger, 1, 5, SimTime::from_millis(2));
        match reply {
            AgentReply::LlInfo { snapshot, .. } => {
                assert_eq!(snapshot.queue, vec![a]);
            }
            _ => panic!("expected LlInfo"),
        }
        assert!(!state.core.ll.contains(1, stranger));
    }

    #[test]
    fn finished_agents_are_never_re_enqueued() {
        let mut state = state();
        let a = aid(1, 1);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(5),
            traced: vec![],
        };
        // a commits...
        state.visit(a, 1, SimTime::from_millis(1), 1);
        let record = marp_replica::CommitRecord {
            version: 1,
            key: 1,
            value: 7,
            agent: a.key(),
            request: 1,
            committed_at: ctx.now,
        };
        state.handle_commit(a, vec![record], &mut ctx);
        assert!(state.core.ul.contains(a));
        // ...and a stale clone of a tries to queue again: refused.
        let info = state.visit(a, 1, SimTime::from_millis(6), 2);
        assert!(!state.core.ll.contains(1, a));
        // The clone can see its own id in the returned UL and dispose.
        assert!(info.ul.contains(a));
    }

    #[test]
    fn stale_finished_entries_do_not_block_claims() {
        let mut state = state();
        let stale = aid(1, 1);
        let claimant = aid(2, 2);
        // The stale agent is enqueued, then its commit arrives through
        // anti-entropy *after* a clone re-queued it: force the bad
        // state by inserting the UL record directly.
        state.visit(stale, 1, SimTime::from_millis(1), 1);
        state.visit(claimant, 1, SimTime::from_millis(2), 2);
        state.core.ul.record(stale, SimTime::from_millis(3));
        let mut ctx = TestCtx {
            now: SimTime::from_millis(4),
            traced: vec![],
        };
        // Claim with a certificate that does NOT name the stale agent:
        // it must still validate because the server's UL marks the
        // entry as finished.
        let ack = state.handle_update(&update_msg(claimant, Some(vec![])), &mut ctx);
        assert!(positive(&ack));
    }

    #[test]
    fn anti_entropy_commits_purge_queue_entries() {
        let mut state = state();
        let winner = aid(1, 1);
        state.visit(winner, 9, SimTime::from_millis(1), 1);
        assert!(state.core.ll.contains(9, winner));
        let mut ctx = TestCtx {
            now: SimTime::from_millis(2),
            traced: vec![],
        };
        // The commit arrives via SyncMsg::Push (anti-entropy), not the
        // winner's COMMIT broadcast.
        let record = marp_replica::CommitRecord {
            version: 1,
            key: 9,
            value: 90,
            agent: winner.key(),
            request: 5,
            committed_at: ctx.now,
        };
        state.core.handle_sync(
            3,
            marp_replica::SyncMsg::Push {
                records: vec![record],
            },
            &mut ctx,
        );
        assert_eq!(state.core.store.applied_version(), 1);
        assert!(
            !state.core.ll.contains(9, winner),
            "sync-applied commit left a stale queue entry"
        );
    }

    #[test]
    fn gossip_can_be_disabled() {
        let mut cfg = MarpConfig::new(3);
        cfg.gossip = false;
        let topo = Topology::uniform_lan(3, Duration::from_millis(2));
        let mut state = MarpServerState::new(
            ServerCore::new(0, ServerConfig::default(), wrap_sync),
            RoutingTable::from_topology(0, &topo),
            &cfg,
        );
        let mut lt = LockingTable::new();
        lt.merge(
            1,
            LlSnapshot {
                version: 1,
                taken_at: SimTime::from_millis(1),
                queue: vec![aid(1, 1)],
            },
        );
        state.deposit_gossip(1, &lt);
        assert_eq!(state.board.known_servers(1), 0);
        let info = state.visit(aid(2, 2), 1, SimTime::from_millis(2), 2);
        assert_eq!(info.board.known_servers(), 0);
    }

    #[test]
    fn stale_incarnation_is_fenced_after_regeneration_acked() {
        let mut state = state();
        let original = aid(1, 1);
        let regenerated = aid(1, 5);
        state.visit(regenerated, 1, SimTime::from_millis(5), 1);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(6),
            traced: vec![],
        };
        // The regenerated agent (incarnation 1) gets a positive ack,
        // raising the fence for request 1.
        let mut claim = update_msg(regenerated, None);
        claim.incarnation = 1;
        let ack = state.handle_update(&claim, &mut ctx);
        assert!(positive(&ack));
        assert!(!fenced(&ack));
        state.handle_release(regenerated);
        // The zombie original (incarnation 0) now claims — even from the
        // top of the queue it must be refused and told it is superseded.
        state.visit(original, 1, SimTime::from_millis(7), 2);
        state.core.ll.remove(1, regenerated);
        let ack = state.handle_update(&update_msg(original, None), &mut ctx);
        assert!(!positive(&ack));
        assert!(fenced(&ack), "stale incarnation must get a fenced ack");
        assert!(ctx.traced.iter().any(|e| matches!(
            e,
            TraceEvent::Custom {
                kind: "update-refused",
                b,
                ..
            } if b & 0xff == 5
        )));
    }

    #[test]
    fn claims_for_already_committed_requests_are_fenced() {
        let mut state = state();
        let winner = aid(1, 1);
        let zombie = aid(1, 3);
        let mut ctx = TestCtx {
            now: SimTime::from_millis(5),
            traced: vec![],
        };
        state.visit(winner, 1, SimTime::from_millis(1), 1);
        let record = marp_replica::CommitRecord {
            version: 1,
            key: 1,
            value: 7,
            agent: winner.key(),
            request: 1,
            committed_at: ctx.now,
        };
        state.handle_commit(winner, vec![record], &mut ctx);
        // A different agent carrying the same (already committed)
        // request gets a fenced refusal regardless of queue position.
        state.visit(zombie, 1, SimTime::from_millis(6), 2);
        let ack = state.handle_update(&update_msg(zombie, None), &mut ctx);
        assert!(!positive(&ack));
        assert!(fenced(&ack), "committed work must fence late claimants");
        assert!(ctx.traced.iter().any(|e| matches!(
            e,
            TraceEvent::Custom {
                kind: "update-refused",
                b,
                ..
            } if b & 0xff == 6
        )));
    }
}
