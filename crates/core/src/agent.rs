//! The MARP update agent — the paper's Algorithm 1.
//!
//! One agent is dispatched per batch of write requests. It travels the
//! replica set appending itself to Locking Lists and accumulating its
//! Locking Table; when the priority calculation (see [`crate::lt`])
//! says it holds the distributed lock it broadcasts `UPDATE`, waits for
//! more than N/2 acknowledgements, broadcasts `COMMIT`, and disposes.
//!
//! Differences from the paper's pseudo-code are confined to robustness
//! (documented in `DESIGN.md`): UPDATE acknowledgements validate the
//! claim and reserve the lock; a claim that cannot assemble a positive
//! majority is released and retried; an agent that exhausts its
//! itinerary *parks* and keeps its locking table fresh through pushed
//! LL-change notifications plus periodic re-polls (which double as lock
//! lease refreshes).

use crate::host::MarpServerState;
use crate::lt::{decide, majority, LockingTable, Priority};
use crate::msg::{AgentReply, CommitMsg, NodeMsg, UpdateMsg};
use bytes::{Bytes, BytesMut};
use marp_agent::{Action, AgentBehavior, AgentEnv, AgentId, Itinerary};
use marp_quorum::{QuorumCall, RetryPolicy, TimerMux, Verdict};
use marp_replica::{CommitRecord, UpdatedList, WriteRequest};
use marp_sim::{span_id, NodeId, SpanKind, TraceEvent};
use marp_wire::{Wire, WireError};
use std::collections::BTreeMap;
use std::time::Duration;

const TIMER_REPOLL: u8 = 1;
const TIMER_ACK: u8 = 2;

/// The agent's current protocol phase.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Working through the itinerary.
    Travelling,
    /// Itinerary exhausted; waiting for the locking picture to change.
    Parked,
    /// Lock claimed; collecting UPDATE acknowledgements.
    Updating {
        /// Whether the claim came from stuck-configuration resolution.
        via_tie: bool,
        /// The tie certificate sent with the claim.
        certificate: Vec<AgentId>,
        /// The majority ack round; each positive reply carries the
        /// server's applied version. Its start time is when the lock was
        /// established (the paper's ALT endpoint).
        call: QuorumCall<u64>,
    },
}

impl Wire for Phase {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Phase::Travelling => 0u8.encode(buf),
            Phase::Parked => 1u8.encode(buf),
            Phase::Updating {
                via_tie,
                certificate,
                call,
            } => {
                2u8.encode(buf);
                via_tie.encode(buf);
                certificate.encode(buf);
                call.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Phase::Travelling),
            1 => Ok(Phase::Parked),
            2 => Ok(Phase::Updating {
                via_tie: bool::decode(buf)?,
                certificate: Vec::decode(buf)?,
                call: QuorumCall::decode(buf)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "Phase",
                tag: u32::from(tag),
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Phase::Travelling | Phase::Parked => 0,
            Phase::Updating {
                via_tie,
                certificate,
                call,
            } => via_tie.encoded_len() + certificate.encoded_len() + call.encoded_len(),
        }
    }
}

/// The travelling update agent.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateAgent {
    id: AgentId,
    n: u16,
    gossip: bool,
    lt_delta: bool,
    ack_timeout_ms: u32,
    park_repoll_ms: u32,
    /// Request List: the writes this agent carries (paper §3.2).
    rl: Vec<WriteRequest>,
    /// Un-visited Servers List (paper §3.2).
    itinerary: Itinerary,
    /// Locking Table (paper §3.2).
    lt: LockingTable,
    /// Updated Agents List (paper §3.2).
    ual: UpdatedList,
    visited: Vec<NodeId>,
    attempt: u32,
    /// Regeneration incarnation assigned by the home replica's dispatch
    /// registry: 0 for the original agent, bumped for each regeneration
    /// of the same batch. Servers fence claims from stale incarnations.
    incarnation: u32,
    repoll_epoch: u32,
    repoll_round: u32,
    timers: TimerMux,
    phase: Phase,
}

impl Wire for UpdateAgent {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.n.encode(buf);
        self.gossip.encode(buf);
        self.lt_delta.encode(buf);
        self.ack_timeout_ms.encode(buf);
        self.park_repoll_ms.encode(buf);
        self.rl.encode(buf);
        self.itinerary.encode(buf);
        self.lt.encode(buf);
        self.ual.encode(buf);
        self.visited.encode(buf);
        self.attempt.encode(buf);
        self.incarnation.encode(buf);
        self.repoll_epoch.encode(buf);
        self.repoll_round.encode(buf);
        self.timers.encode(buf);
        self.phase.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(UpdateAgent {
            id: AgentId::decode(buf)?,
            n: u16::decode(buf)?,
            gossip: bool::decode(buf)?,
            lt_delta: bool::decode(buf)?,
            ack_timeout_ms: u32::decode(buf)?,
            park_repoll_ms: u32::decode(buf)?,
            rl: Vec::decode(buf)?,
            itinerary: Itinerary::decode(buf)?,
            lt: LockingTable::decode(buf)?,
            ual: UpdatedList::decode(buf)?,
            visited: Vec::decode(buf)?,
            attempt: u32::decode(buf)?,
            incarnation: u32::decode(buf)?,
            repoll_epoch: u32::decode(buf)?,
            repoll_round: u32::decode(buf)?,
            timers: TimerMux::decode(buf)?,
            phase: Phase::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.n.encoded_len()
            + self.gossip.encoded_len()
            + self.lt_delta.encoded_len()
            + self.ack_timeout_ms.encoded_len()
            + self.park_repoll_ms.encoded_len()
            + self.rl.encoded_len()
            + self.itinerary.encoded_len()
            + self.lt.encoded_len()
            + self.ual.encoded_len()
            + self.visited.encoded_len()
            + self.attempt.encoded_len()
            + self.incarnation.encoded_len()
            + self.repoll_epoch.encoded_len()
            + self.repoll_round.encoded_len()
            + self.timers.encoded_len()
            + self.phase.encoded_len()
    }
}

impl UpdateAgent {
    /// Create an agent carrying `requests`, ready to be spawned at its
    /// home server.
    pub fn new(id: AgentId, cfg: &crate::MarpConfig, requests: Vec<WriteRequest>) -> Self {
        UpdateAgent {
            id,
            n: cfg.n_servers as u16,
            gossip: cfg.gossip,
            lt_delta: cfg.lt_delta,
            ack_timeout_ms: cfg.ack_timeout.as_millis() as u32,
            park_repoll_ms: cfg.park_repoll.as_millis() as u32,
            rl: requests,
            itinerary: Itinerary::for_system(cfg.n_servers, id.home, cfg.itinerary),
            lt: LockingTable::new(),
            ual: UpdatedList::new(),
            visited: Vec::new(),
            attempt: 0,
            incarnation: 0,
            repoll_epoch: 0,
            repoll_round: 0,
            timers: TimerMux::new(),
            phase: Phase::Travelling,
        }
    }

    /// Mark this agent as incarnation `incarnation` of its batch (0 is
    /// the original dispatch; the home's dispatch registry bumps it for
    /// every regeneration).
    pub fn with_incarnation(mut self, incarnation: u32) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// This agent's regeneration incarnation.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Current phase (for inspection).
    pub fn phase(&self) -> &Phase {
        &self.phase
    }

    /// Servers visited so far (the paper's K in PRK).
    pub fn visits(&self) -> u32 {
        self.visited.len() as u32
    }

    /// Replicas backing this copy's lock — the K that Theorem 3 bounds.
    /// Usually equal to [`Self::visits`], but the theorem's real
    /// quantity is Locking-List presence: after a duplicated migration
    /// (home re-sends the agent on a lost migrate-ack) a clone shares
    /// its sibling's AgentId and therefore inherits its LL enqueues, so
    /// it can legitimately win with a hop count below the majority.
    /// `max` also keeps the hop count authoritative if a lease expiry
    /// shrinks the observed presence mid-flight.
    fn lock_backing(&self) -> u32 {
        self.visits().max(self.lt.presence_count(self.id) as u32)
    }

    /// The requests this agent carries.
    pub fn requests(&self) -> &[WriteRequest] {
        &self.rl
    }

    /// The object key this agent's batch writes. Batches are
    /// key-uniform — the home node splits mixed batches at dispatch —
    /// so the first request speaks for all of them (an empty batch
    /// never dispatches; 0 is the single-key default).
    pub fn key(&self) -> u64 {
        self.rl.first().map_or(0, |r| r.key)
    }

    /// The agent's Locking Table (inspection).
    pub fn locking_table(&self) -> &LockingTable {
        &self.lt
    }

    /// The agent's Updated-Agents List (inspection).
    pub fn ual(&self) -> &UpdatedList {
        &self.ual
    }

    fn maj(&self) -> usize {
        majority(usize::from(self.n))
    }

    fn broadcast(&self, env: &mut AgentEnv<'_>, msg: &NodeMsg) {
        let bytes = marp_wire::to_bytes(msg);
        for server in 0..self.n {
            env.send_raw(server, bytes.clone());
        }
    }

    fn evaluate(&mut self, host: &mut MarpServerState, env: &mut AgentEnv<'_>) -> Action {
        if matches!(self.phase, Phase::Updating { .. }) {
            return Action::Stay;
        }
        match decide(
            &self.lt,
            self.id,
            usize::from(self.n),
            &self.ual,
            self.itinerary.unavailable(),
        ) {
            Priority::Win {
                via_tie,
                certificate,
            } => {
                self.start_update(env, via_tie, certificate);
                Action::Stay
            }
            Priority::NotYet => {
                if let Some(next) = self.itinerary.next_destination(|to| host.route_cost(to)) {
                    self.phase = Phase::Travelling;
                    return Action::Migrate(next);
                }
                // Itinerary exhausted. If the agent is not enqueued at a
                // strict majority (some replicas were unavailable when it
                // travelled), it can never win — begin the paper's "next
                // round": the skipped replicas become visitable again,
                // catching ones that have since recovered.
                if self.lt.presence_count(self.id) < self.maj()
                    && self.itinerary.begin_next_round() > 0
                {
                    if let Some(next) = self.itinerary.next_destination(|to| host.route_cost(to)) {
                        self.phase = Phase::Travelling;
                        return Action::Migrate(next);
                    }
                }
                self.enter_parked(env);
                Action::Stay
            }
        }
    }

    fn enter_parked(&mut self, env: &mut AgentEnv<'_>) {
        if matches!(self.phase, Phase::Parked) {
            return;
        }
        self.phase = Phase::Parked;
        self.timers.disarm_kind(TIMER_REPOLL);
        self.repoll_epoch += 1;
        self.repoll_round = 0;
        self.arm_repoll(env);
    }

    /// The parked re-poll backoff: parked agents mostly learn of LL
    /// changes through pushed notifications, so the re-poll is a
    /// fallback that should not flood the network under heavy
    /// contention — exponential, capped at 8x, with a small
    /// deterministic per-agent stagger so many agents parking together
    /// do not re-poll in lockstep.
    fn repoll_policy(&self) -> RetryPolicy {
        RetryPolicy::exponential(Duration::from_millis(u64::from(self.park_repoll_ms)), 3)
            .staggered(Duration::from_millis(1), self.id.key(), 8)
    }

    fn arm_repoll(&mut self, env: &mut AgentEnv<'_>) {
        let delay = self.repoll_policy().next_delay(self.repoll_round);
        let tag = self.timers.arm(TIMER_REPOLL, u64::from(self.repoll_epoch));
        env.set_timer(delay, tag);
    }

    fn start_update(&mut self, env: &mut AgentEnv<'_>, via_tie: bool, certificate: Vec<AgentId>) {
        self.attempt += 1;
        env.trace(TraceEvent::SpanEnd {
            id: span_id(
                SpanKind::LockAcquire,
                self.id.key(),
                u64::from(self.attempt),
            ),
            kind: SpanKind::LockAcquire,
        });
        let update_span = span_id(
            SpanKind::UpdateQuorum,
            self.id.key(),
            u64::from(self.attempt),
        );
        env.trace(TraceEvent::SpanStart {
            id: update_span,
            parent: span_id(SpanKind::Dispatch, self.id.key(), 0),
            kind: SpanKind::UpdateQuorum,
            a: self.id.key(),
            b: u64::from(self.attempt),
        });
        env.trace(TraceEvent::LockGranted {
            agent: self.id.key(),
            node: env.here(),
            visits: self.lock_backing(),
            via_tie,
        });
        env.trace(TraceEvent::UpdateSent {
            agent: self.id.key(),
            version: 0, // final versions are assigned at COMMIT
        });
        let msg = NodeMsg::Update(UpdateMsg {
            agent: self.id,
            attempt: self.attempt,
            incarnation: self.incarnation,
            reply_to: env.here(),
            requests: self.rl.clone(),
            tie_certificate: via_tie.then(|| certificate.clone()),
        });
        self.broadcast(env, &msg);
        self.phase = Phase::Updating {
            via_tie,
            certificate,
            call: QuorumCall::majority(self.n, env.now()).with_span(update_span),
        };
        self.timers.disarm_kind(TIMER_ACK);
        let tag = self.timers.arm(TIMER_ACK, u64::from(self.attempt));
        env.set_timer(Duration::from_millis(u64::from(self.ack_timeout_ms)), tag);
    }

    fn commit_and_dispose(&mut self, env: &mut AgentEnv<'_>) -> Action {
        let Phase::Updating { call, .. } = &self.phase else {
            return Action::Stay;
        };
        let locked_at = call.started();
        // "It then checks the time of last update of all the quorum
        // members and uses the most recent copy": commit on top of the
        // quorum's maximum applied version.
        let base = call.max_payload().unwrap_or(0);
        let records: Vec<CommitRecord> = self
            .rl
            .iter()
            .enumerate()
            .map(|(i, req)| CommitRecord {
                version: base + 1 + i as u64,
                key: req.key,
                value: req.value,
                agent: self.id.key(),
                request: req.id,
                committed_at: env.now(),
            })
            .collect();
        let msg = NodeMsg::Commit(CommitMsg {
            agent: self.id,
            records,
        });
        self.broadcast(env, &msg);
        let update_span = span_id(
            SpanKind::UpdateQuorum,
            self.id.key(),
            u64::from(self.attempt),
        );
        env.trace(TraceEvent::SpanEnd {
            id: update_span,
            kind: SpanKind::UpdateQuorum,
        });
        // Commit spans close at each request's home server when the
        // commit record reaches its pending client (ServerCore).
        for req in &self.rl {
            env.trace(TraceEvent::SpanStart {
                id: span_id(SpanKind::Commit, self.id.key(), req.id),
                parent: update_span,
                kind: SpanKind::Commit,
                a: self.id.key(),
                b: req.id,
            });
        }
        for req in &self.rl {
            env.trace(TraceEvent::UpdateCompleted {
                request: req.id,
                home: self.id.home,
                arrived: req.arrived,
                dispatched: self.id.born,
                locked: locked_at,
                visits: self.lock_backing(),
            });
        }
        Action::Dispose
    }

    /// A server's fenced refusal told this agent it is superseded — a
    /// higher incarnation owns its requests, or every request it
    /// carries has already committed. Release everything and dispose;
    /// if the work is in fact unfinished, the home's dispatch registry
    /// regenerates it under a fresh incarnation. This extends the
    /// zombie-clone self-check: the UL catches clones of the *same*
    /// agent id, the fence catches zombies across regenerations.
    fn superseded(&mut self, env: &mut AgentEnv<'_>) -> Action {
        env.trace(TraceEvent::Custom {
            kind: "agent-superseded",
            a: self.id.key(),
            b: u64::from(self.incarnation),
        });
        env.trace(TraceEvent::SpanEnd {
            id: span_id(
                SpanKind::UpdateQuorum,
                self.id.key(),
                u64::from(self.attempt),
            ),
            kind: SpanKind::UpdateQuorum,
        });
        self.timers.disarm_kind(TIMER_ACK);
        let msg = NodeMsg::Release { agent: self.id };
        self.broadcast(env, &msg);
        Action::Dispose
    }

    fn abort_claim(&mut self, env: &mut AgentEnv<'_>) {
        env.trace(TraceEvent::WinAborted {
            agent: self.id.key(),
        });
        env.trace(TraceEvent::SpanEnd {
            id: span_id(
                SpanKind::UpdateQuorum,
                self.id.key(),
                u64::from(self.attempt),
            ),
            kind: SpanKind::UpdateQuorum,
        });
        // The next lock-acquisition round starts immediately (the agent
        // goes back to competing from parked).
        env.trace(TraceEvent::SpanStart {
            id: span_id(
                SpanKind::LockAcquire,
                self.id.key(),
                u64::from(self.attempt) + 1,
            ),
            parent: span_id(SpanKind::Dispatch, self.id.key(), 0),
            kind: SpanKind::LockAcquire,
            a: self.id.key(),
            b: u64::from(self.attempt) + 1,
        });
        self.timers.disarm_kind(TIMER_ACK);
        let msg = NodeMsg::Release { agent: self.id };
        self.broadcast(env, &msg);
        // Fall back to parked: the next re-poll (after a short pause,
        // which doubles as backoff) refreshes the locking table.
        self.phase = Phase::Travelling; // force the parked transition
        self.enter_parked(env);
    }

    fn absorb_ll_info(
        &mut self,
        node: NodeId,
        snapshot: marp_replica::LlSnapshot,
        board: LockingTable,
        ul: UpdatedList,
    ) {
        self.repoll_round = 0;
        self.ual.merge(&ul);
        self.lt.merge(node, snapshot);
        if self.gossip {
            self.lt.merge_table(&board);
        }
    }
}

impl AgentBehavior for UpdateAgent {
    type Host = MarpServerState;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_arrive(&mut self, host: &mut MarpServerState, env: &mut AgentEnv<'_>) -> Action {
        let here = env.here();
        if self.visited.is_empty() && self.attempt == 0 {
            // First arrival (at home): the first lock-acquisition round
            // begins. Later rounds are opened by `abort_claim`.
            env.trace(TraceEvent::SpanStart {
                id: span_id(SpanKind::LockAcquire, self.id.key(), 1),
                parent: span_id(SpanKind::Dispatch, self.id.key(), 0),
                kind: SpanKind::LockAcquire,
                a: self.id.key(),
                b: 1,
            });
        }
        if !self.visited.contains(&here) {
            self.visited.push(here);
        }
        let info = host.visit(self.id, self.key(), env.now(), here);
        env.trace(TraceEvent::LockRequested {
            agent: self.id.key(),
            node: here,
        });
        // Record when this arrival found earlier agents queued ahead on
        // its key's Locking List: the keyspace tests use the *absence*
        // of this event to prove that disjoint-key agents never block
        // each other.
        if let Some(rank) = info.snapshot.queue.iter().position(|&a| a == self.id) {
            if rank > 0 {
                env.trace(TraceEvent::Custom {
                    kind: "lock-queued-behind",
                    a: self.id.key(),
                    b: rank as u64,
                });
            }
        }
        self.ual.merge(&info.ul);
        // A clone left over from a duplicated migration discovers here
        // that "it" already obtained the lock and updated (it is in the
        // Updated List): its work is done, it must not compete again.
        if self.ual.contains(self.id) {
            env.trace(TraceEvent::Custom {
                kind: "zombie-clone-disposed",
                a: self.id.key(),
                b: u64::from(here),
            });
            return Action::Dispose;
        }
        self.lt.merge(here, info.snapshot);
        if self.gossip {
            self.lt.merge_table(&info.board);
            host.deposit_gossip(self.key(), &self.lt);
        }
        self.evaluate(host, env)
    }

    fn on_agent_message(
        &mut self,
        _from: NodeId,
        payload: Bytes,
        host: &mut MarpServerState,
        env: &mut AgentEnv<'_>,
    ) -> Action {
        let Ok(reply) = marp_wire::from_bytes::<AgentReply>(&payload) else {
            return Action::Stay;
        };
        match reply {
            AgentReply::UpdateAck {
                node,
                attempt,
                positive,
                store_version,
                fenced,
                ..
            } => {
                if attempt != self.attempt {
                    return Action::Stay; // stale ack from an aborted claim
                }
                if !matches!(self.phase, Phase::Updating { .. }) {
                    return Action::Stay;
                }
                if fenced {
                    return self.superseded(env);
                }
                let Phase::Updating { call, .. } = &mut self.phase else {
                    return Action::Stay;
                };
                // The call dedupes repeated acks; only a deciding reply
                // returns a verdict.
                match call.offer_vote(node, positive, store_version) {
                    Some(Verdict::Won) => self.commit_and_dispose(env),
                    Some(Verdict::Lost) => {
                        // A positive majority is no longer possible.
                        self.abort_claim(env);
                        Action::Stay
                    }
                    _ => Action::Stay,
                }
            }
            AgentReply::LlInfo {
                node,
                snapshot,
                board,
                ul,
            } => {
                self.absorb_ll_info(node, snapshot, board, ul);
                if matches!(self.phase, Phase::Parked) {
                    self.evaluate(host, env)
                } else {
                    Action::Stay
                }
            }
        }
    }

    fn on_timer(
        &mut self,
        tag: u64,
        _host: &mut MarpServerState,
        env: &mut AgentEnv<'_>,
    ) -> Action {
        let Some((kind, epoch)) = self.timers.fired(tag) else {
            return Action::Stay; // stale: disarmed or from a dead epoch
        };
        match kind {
            TIMER_REPOLL => {
                if matches!(self.phase, Phase::Parked) && epoch == u64::from(self.repoll_epoch) {
                    // Key 0 keeps the legacy query form so single-key
                    // deployments stay byte-identical on the wire.
                    let msg = match self.key() {
                        0 => NodeMsg::LlQuery {
                            agent: self.id,
                            reply_to: env.here(),
                        },
                        key => NodeMsg::LlQueryKeyed {
                            agent: self.id,
                            key,
                            reply_to: env.here(),
                        },
                    };
                    self.broadcast(env, &msg);
                    self.repoll_round = self.repoll_round.saturating_add(1);
                    self.arm_repoll(env);
                }
                Action::Stay
            }
            TIMER_ACK => {
                if matches!(self.phase, Phase::Updating { .. }) && epoch == u64::from(self.attempt)
                {
                    self.abort_claim(env);
                }
                Action::Stay
            }
            _ => Action::Stay,
        }
    }

    fn on_migrate_failed(
        &mut self,
        dest: NodeId,
        _attempts: u32,
        host: &mut MarpServerState,
        env: &mut AgentEnv<'_>,
    ) -> Action {
        self.itinerary.mark_unavailable(dest);
        self.evaluate(host, env)
    }

    fn host_horizon(host: &MarpServerState) -> BTreeMap<u64, u64> {
        host.horizon()
    }

    fn record_peer_horizon(host: &mut MarpServerState, peer: NodeId, horizon: BTreeMap<u64, u64>) {
        host.record_peer_horizon(peer, horizon);
    }

    fn before_migrate(&mut self, dest: NodeId, host: &mut MarpServerState) {
        if !self.lt_delta {
            return;
        }
        // The destination re-supplies its own LL snapshot on arrival
        // (`visit` → `merge`), and LL versions are monotonic, so the
        // entry for `dest` never needs to travel.
        self.lt.drop_server(dest);
        // Anything below the destination's advertised knowledge horizon
        // is re-merged from its gossip board on arrival — but only a
        // board-backed horizon makes that recovery possible, so pruning
        // against peers is gated on gossip. A stale horizon (peer
        // crashed and lost its board) costs at most a re-gather round;
        // safety rests on the UPDATE validation quorum, not the LT.
        if self.gossip {
            if let Some(packed) = host.peer_horizon(dest) {
                let h = crate::lt::horizon_for_key(packed, self.key());
                self.lt.prune_covered_by(&h);
            }
        }
        // The UAL is a cache of the servers' Updated Lists, which the
        // COMMIT broadcast feeds directly — the destination re-supplies
        // its own copy on arrival (`visit`). An entry no carried
        // snapshot still names cannot influence any decision made from
        // this table, so it is dead weight on the wire; shedding it is
        // the agent-side analogue of the servers' lease-bounded UL
        // pruning (`maintain`), with the same liveness-only exposure.
        // The agent's own entry always travels: it is the zombie-clone
        // self-check, and must survive hops through servers that have
        // already pruned it.
        let named = self.lt.known_agents(&UpdatedList::new());
        self.ual
            .retain(|agent| agent == self.id || named.binary_search(&agent).is_ok());
    }

    fn carried_lt_entries(&self) -> u64 {
        let queued: usize = self.lt.iter().map(|(_, snap)| snap.queue.len()).sum();
        queued as u64 + self.ual.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarpConfig;
    use marp_sim::SimTime;

    fn agent() -> UpdateAgent {
        let cfg = MarpConfig::new(5);
        UpdateAgent::new(
            AgentId::new(0, SimTime::from_millis(1), 0),
            &cfg,
            vec![WriteRequest {
                id: 1,
                client: 9,
                key: 2,
                value: 3,
                arrived: SimTime::ZERO,
            }],
        )
    }

    #[test]
    fn wire_roundtrip_of_fresh_agent() {
        let a = agent();
        let bytes = marp_wire::to_bytes(&a);
        let back: UpdateAgent = marp_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn wire_roundtrip_of_updating_phase() {
        let mut a = agent();
        let mut call = QuorumCall::majority(5, SimTime::from_millis(7));
        call.offer_vote(0, true, 4);
        call.offer_vote(2, true, 5);
        call.offer_vote(1, false, 0);
        a.phase = Phase::Updating {
            via_tie: true,
            certificate: vec![AgentId::new(1, SimTime::ZERO, 0)],
            call,
        };
        a.visited = vec![0, 1, 2];
        a.attempt = 3;
        a.incarnation = 2;
        a.timers.arm(TIMER_ACK, 3);
        let bytes = marp_wire::to_bytes(&a);
        let back: UpdateAgent = marp_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn fresh_agent_reports_defaults() {
        let a = agent();
        assert_eq!(a.visits(), 0);
        assert_eq!(a.requests().len(), 1);
        assert_eq!(*a.phase(), Phase::Travelling);
        assert_eq!(a.maj(), 3);
        assert_eq!(a.incarnation(), 0);
        assert_eq!(a.with_incarnation(4).incarnation(), 4);
    }
}
