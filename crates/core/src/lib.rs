//! **MARP** — Mobile Agent enabled Replication Protocols.
//!
//! Rust reproduction of the consistent replication protocol from
//! *"Achieving Replication Consistency Using Cooperating Mobile
//! Agents"* (J. Cao, A.T.S. Chan, J. Wu; ICPP 2001). One mobile agent is
//! dispatched per batch of client writes; it travels the replica set
//! appending itself to per-server Locking Lists, accumulates a Locking
//! Table of everything it has seen, wins the distributed lock when it is
//! top of a strict majority of Locking Lists (with deterministic
//! identifier-based resolution of provably stuck configurations), then
//! broadcasts `UPDATE`, collects a majority of acknowledgements, and
//! broadcasts `COMMIT`. Reads are served from the local replica.
//!
//! Module map:
//!
//! * [`lt`] — the Locking Table and the priority calculation
//!   (Algorithm 1's decision core; Theorems 1–2 territory).
//! * [`UpdateAgent`] — the travelling agent behaviour (Algorithm 1).
//! * [`MarpServerState`] — server-side handlers (Algorithm 2) plus the
//!   validation/reservation refinement documented in `DESIGN.md`.
//! * [`MarpNode`] — the full replica node [`marp_sim::Process`]:
//!   batching, agent hosting, protocol message dispatch, maintenance,
//!   crash recovery.
//! * [`GossipBoard`] — §3.3's information sharing between agents.
//!
//! # Quick start
//!
//! ```
//! use marp_core::{build_cluster, MarpConfig};
//! use marp_net::{LinkModel, SimTransport, Topology};
//! use marp_replica::{ClientProcess, Operation, ScriptedSource};
//! use marp_sim::{SimRng, SimTime, Simulation, TraceLevel};
//! use std::time::Duration;
//!
//! let n = 3;
//! let topo = Topology::uniform_lan(n + 1, Duration::from_millis(2));
//! let transport = SimTransport::new(topo.clone(), LinkModel::ideal(), SimRng::from_seed(7));
//! let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);
//! build_cluster(&mut sim, &MarpConfig::new(n), &topo);
//! // One client writing once through server 0.
//! let source = ScriptedSource::new([(Duration::from_millis(1), Operation::Write { key: 1, value: 42 })]);
//! sim.add_process(Box::new(ClientProcess::new(
//!     0,
//!     Box::new(source),
//!     marp_core::wrap_client_request,
//! )));
//! sim.run_until(SimTime::from_secs(2));
//! // All three replicas applied the write.
//! for server in 0..n as u16 {
//!     let node = sim.process::<marp_core::MarpNode>(server).unwrap();
//!     assert_eq!(node.state().core.store.get(1).unwrap().value, 42);
//! }
//! ```

#![warn(missing_docs)]

mod agent;
mod config;
mod gossip;
mod host;
pub mod lt;
mod msg;
mod node;
mod read_agent;

pub use agent::{Phase, UpdateAgent};
pub use config::{ChaosMode, MarpConfig};
pub use gossip::GossipBoard;
pub use host::{MarpServerState, VisitInfo};
pub use msg::{
    wire_tag_name, wrap_agent_envelope, wrap_client_request, wrap_read_agent_envelope, wrap_sync,
    AgentReply, CommitMsg, NodeMsg, UpdateMsg, WIRE_TAG_SYNC,
};
pub use node::MarpNode;
pub use read_agent::ReadAgent;

use marp_net::{RoutingTable, Topology};
use marp_sim::{NodeId, Simulation};

/// Add `cfg.n_servers` MARP replica nodes to a simulation, with routing
/// tables derived from `topo`. Servers occupy node ids `0..n_servers`;
/// add clients afterwards. Returns the server node ids.
pub fn build_cluster(sim: &mut Simulation, cfg: &MarpConfig, topo: &Topology) -> Vec<NodeId> {
    assert!(
        topo.len() >= cfg.n_servers,
        "topology smaller than the server count"
    );
    (0..cfg.n_servers as NodeId)
        .map(|me| {
            let routing = RoutingTable::from_topology(me, topo);
            sim.add_process(Box::new(MarpNode::new(me, *cfg, routing)))
        })
        .collect()
}
