//! MARP wire messages.
//!
//! [`NodeMsg`] is the complete message space of a MARP replica node;
//! [`AgentReply`] is the payload space of `ToAgent` envelopes servers
//! send back to agents (UPDATE acknowledgements and LL information).

use crate::lt::LockingTable;
use bytes::{Bytes, BytesMut};
use marp_agent::{AgentEnvelope, AgentId};
use marp_replica::{ClientRequest, CommitRecord, LlSnapshot, SyncMsg, UpdatedList, WriteRequest};
use marp_sim::{NodeId, SimTime};
use marp_wire::{Wire, WireError};

/// The winning agent's UPDATE broadcast: "having obtained the lock,
/// broadcast a message to all the replicas to request the update".
/// Doubles as the validation/reservation round (see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateMsg {
    /// The claiming agent.
    pub agent: AgentId,
    /// Attempt counter: acks echo it so a retried claim cannot count
    /// stale acknowledgements from an aborted attempt.
    pub attempt: u32,
    /// Regeneration incarnation of the batch this agent carries. The
    /// home replica bumps it each time it regenerates a lost agent;
    /// servers fence claims whose incarnation is below the highest they
    /// have positively acknowledged for any of the same requests, so a
    /// zombie original and its replacement can never both commit.
    pub incarnation: u32,
    /// Where the agent awaits acknowledgements.
    pub reply_to: NodeId,
    /// The write requests about to be committed (versions not yet
    /// assigned — they are fixed at COMMIT from the quorum's maximum).
    pub requests: Vec<WriteRequest>,
    /// For tie wins: every rival the winner knows about; a server
    /// validates that all agents ranked above the claimant in its LL
    /// appear here.
    pub tie_certificate: Option<Vec<AgentId>>,
}

marp_wire::wire_struct!(UpdateMsg {
    agent,
    attempt,
    incarnation,
    reply_to,
    requests,
    tie_certificate
});

/// The winning agent's COMMIT broadcast, carrying the final records.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitMsg {
    /// The committing agent (its LL entries are removed and it enters
    /// the Updated List).
    pub agent: AgentId,
    /// The committed records, versions assigned.
    pub records: Vec<CommitRecord>,
}

marp_wire::wire_struct!(CommitMsg { agent, records });

/// Full message space of a MARP replica node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMsg {
    /// A client request.
    Client(ClientRequest),
    /// Agent-runtime traffic (migrations, acks, agent-addressed mail).
    Agent(AgentEnvelope),
    /// A winner's UPDATE broadcast.
    Update(UpdateMsg),
    /// A winner's COMMIT broadcast.
    Commit(CommitMsg),
    /// A claimant releasing its reservation after a failed validation.
    Release {
        /// The aborting agent.
        agent: AgentId,
    },
    /// A parked agent refreshing its lease and asking for fresh LL info
    /// about object key 0 (the legacy single-key form; agents for other
    /// keys send [`NodeMsg::LlQueryKeyed`] so single-key traffic stays
    /// byte-identical).
    LlQuery {
        /// The asking agent.
        agent: AgentId,
        /// Where it is parked (replies go there).
        reply_to: NodeId,
    },
    /// Anti-entropy.
    Sync(SyncMsg),
    /// Read-agent runtime traffic (the consistent-read extension runs
    /// its agents in a separate runtime with its own envelope space).
    RAgent(AgentEnvelope),
    /// A parked agent refreshing its lease and asking for fresh LL info
    /// about a specific object key (sent only when the key is not 0).
    LlQueryKeyed {
        /// The asking agent.
        agent: AgentId,
        /// The object key whose queue the agent waits on.
        key: u64,
        /// Where it is parked (replies go there).
        reply_to: NodeId,
    },
}

const TAG_CLIENT: u8 = 0;
const TAG_AGENT: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_RELEASE: u8 = 4;
const TAG_LL_QUERY: u8 = 5;
const TAG_SYNC: u8 = 6;
const TAG_RAGENT: u8 = 7;
const TAG_LL_QUERY_KEYED: u8 = 8;

/// Leading wire-tag byte of [`NodeMsg::Sync`] frames — the anti-entropy
/// (gossip reconciliation) channel. The sim kernel buckets sent bytes by
/// this leading byte (`RunStats::bytes_by_kind`), so observability code
/// needs the tag value to attribute that slot without re-decoding frames.
pub const WIRE_TAG_SYNC: u8 = TAG_SYNC;

/// Human-readable name for a leading [`NodeMsg`] wire-tag byte, for
/// byte-accounting tables indexed by `RunStats::bytes_by_kind` slot.
/// Unassigned slots come back as `"other"`.
pub fn wire_tag_name(tag: u8) -> &'static str {
    match tag {
        TAG_CLIENT => "client",
        TAG_AGENT => "agent",
        TAG_UPDATE => "update",
        TAG_COMMIT => "commit",
        TAG_RELEASE => "release",
        TAG_LL_QUERY => "ll-query",
        TAG_SYNC => "sync",
        TAG_RAGENT => "ragent",
        TAG_LL_QUERY_KEYED => "ll-query-keyed",
        _ => "other",
    }
}

impl Wire for NodeMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            NodeMsg::Client(req) => {
                TAG_CLIENT.encode(buf);
                req.encode(buf);
            }
            NodeMsg::Agent(env) => {
                TAG_AGENT.encode(buf);
                env.encode(buf);
            }
            NodeMsg::Update(msg) => {
                TAG_UPDATE.encode(buf);
                msg.encode(buf);
            }
            NodeMsg::Commit(msg) => {
                TAG_COMMIT.encode(buf);
                msg.encode(buf);
            }
            NodeMsg::Release { agent } => {
                TAG_RELEASE.encode(buf);
                agent.encode(buf);
            }
            NodeMsg::LlQuery { agent, reply_to } => {
                TAG_LL_QUERY.encode(buf);
                agent.encode(buf);
                reply_to.encode(buf);
            }
            NodeMsg::Sync(msg) => {
                TAG_SYNC.encode(buf);
                msg.encode(buf);
            }
            NodeMsg::RAgent(env) => {
                TAG_RAGENT.encode(buf);
                env.encode(buf);
            }
            NodeMsg::LlQueryKeyed {
                agent,
                key,
                reply_to,
            } => {
                TAG_LL_QUERY_KEYED.encode(buf);
                agent.encode(buf);
                key.encode(buf);
                reply_to.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            TAG_CLIENT => Ok(NodeMsg::Client(ClientRequest::decode(buf)?)),
            TAG_AGENT => Ok(NodeMsg::Agent(AgentEnvelope::decode(buf)?)),
            TAG_UPDATE => Ok(NodeMsg::Update(UpdateMsg::decode(buf)?)),
            TAG_COMMIT => Ok(NodeMsg::Commit(CommitMsg::decode(buf)?)),
            TAG_RELEASE => Ok(NodeMsg::Release {
                agent: AgentId::decode(buf)?,
            }),
            TAG_LL_QUERY => Ok(NodeMsg::LlQuery {
                agent: AgentId::decode(buf)?,
                reply_to: NodeId::decode(buf)?,
            }),
            TAG_SYNC => Ok(NodeMsg::Sync(SyncMsg::decode(buf)?)),
            TAG_RAGENT => Ok(NodeMsg::RAgent(AgentEnvelope::decode(buf)?)),
            TAG_LL_QUERY_KEYED => Ok(NodeMsg::LlQueryKeyed {
                agent: AgentId::decode(buf)?,
                key: u64::decode(buf)?,
                reply_to: NodeId::decode(buf)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "NodeMsg",
                tag: u32::from(tag),
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            NodeMsg::Client(req) => req.encoded_len(),
            NodeMsg::Agent(env) | NodeMsg::RAgent(env) => env.encoded_len(),
            NodeMsg::Update(msg) => msg.encoded_len(),
            NodeMsg::Commit(msg) => msg.encoded_len(),
            NodeMsg::Release { agent } => agent.encoded_len(),
            NodeMsg::LlQuery { agent, reply_to } => agent.encoded_len() + reply_to.encoded_len(),
            NodeMsg::Sync(msg) => msg.encoded_len(),
            NodeMsg::LlQueryKeyed {
                agent,
                key,
                reply_to,
            } => agent.encoded_len() + key.encoded_len() + reply_to.encoded_len(),
        }
    }
}

/// Payloads servers address to agents (inside `ToAgent` envelopes).
#[derive(Debug, Clone, PartialEq)]
pub enum AgentReply {
    /// Acknowledgement of an UPDATE.
    UpdateAck {
        /// The acknowledging server.
        node: NodeId,
        /// Echo of the claim's attempt counter.
        attempt: u32,
        /// True when validation passed and the lock is reserved for the
        /// claimant; the paper's plain ack.
        positive: bool,
        /// The server's applied version (the winner commits from the
        /// quorum maximum — "uses the most recent copy").
        store_version: u64,
        /// The server's last update time (the paper's freshness check).
        last_update: SimTime,
        /// True when the claim was refused because it is *superseded*:
        /// its incarnation is below a fence, or every request it
        /// carries has already committed. The agent must release and
        /// dispose — its work belongs to another incarnation.
        fenced: bool,
    },
    /// Fresh locking information (reply to `LlQuery`, a visit, or a
    /// pushed change notification).
    LlInfo {
        /// The reporting server.
        node: NodeId,
        /// Its current LL.
        snapshot: LlSnapshot,
        /// Its gossip board contents (empty when gossip is disabled).
        board: LockingTable,
        /// Its Updated List.
        ul: UpdatedList,
    },
}

impl Wire for AgentReply {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            AgentReply::UpdateAck {
                node,
                attempt,
                positive,
                store_version,
                last_update,
                fenced,
            } => {
                0u8.encode(buf);
                node.encode(buf);
                attempt.encode(buf);
                positive.encode(buf);
                store_version.encode(buf);
                last_update.encode(buf);
                fenced.encode(buf);
            }
            AgentReply::LlInfo {
                node,
                snapshot,
                board,
                ul,
            } => {
                1u8.encode(buf);
                node.encode(buf);
                snapshot.encode(buf);
                board.encode(buf);
                ul.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(AgentReply::UpdateAck {
                node: NodeId::decode(buf)?,
                attempt: u32::decode(buf)?,
                positive: bool::decode(buf)?,
                store_version: u64::decode(buf)?,
                last_update: SimTime::decode(buf)?,
                fenced: bool::decode(buf)?,
            }),
            1 => Ok(AgentReply::LlInfo {
                node: NodeId::decode(buf)?,
                snapshot: LlSnapshot::decode(buf)?,
                board: LockingTable::decode(buf)?,
                ul: UpdatedList::decode(buf)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "AgentReply",
                tag: u32::from(tag),
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            AgentReply::UpdateAck {
                node,
                attempt,
                positive,
                store_version,
                last_update,
                fenced,
            } => {
                node.encoded_len()
                    + attempt.encoded_len()
                    + positive.encoded_len()
                    + store_version.encoded_len()
                    + last_update.encoded_len()
                    + fenced.encoded_len()
            }
            AgentReply::LlInfo {
                node,
                snapshot,
                board,
                ul,
            } => {
                node.encoded_len() + snapshot.encoded_len() + board.encoded_len() + ul.encoded_len()
            }
        }
    }
}

/// Encode an [`AgentEnvelope`] into the MARP node message space (the
/// `WrapFn` handed to the agent runtime).
pub fn wrap_agent_envelope(envelope: AgentEnvelope) -> Bytes {
    marp_wire::to_bytes(&NodeMsg::Agent(envelope))
}

/// Encode a [`SyncMsg`] into the MARP node message space.
pub fn wrap_sync(msg: SyncMsg) -> Bytes {
    marp_wire::to_bytes(&NodeMsg::Sync(msg))
}

/// Encode a read-agent [`AgentEnvelope`] into the MARP node message
/// space.
pub fn wrap_read_agent_envelope(envelope: AgentEnvelope) -> Bytes {
    marp_wire::to_bytes(&NodeMsg::RAgent(envelope))
}

/// Encode a [`ClientRequest`] into the MARP node message space.
pub fn wrap_client_request(request: ClientRequest) -> Bytes {
    marp_wire::to_bytes(&NodeMsg::Client(request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_replica::Operation;

    fn roundtrip(msg: NodeMsg) {
        let bytes = marp_wire::to_bytes(&msg);
        assert_eq!(marp_wire::from_bytes::<NodeMsg>(&bytes).unwrap(), msg);
    }

    fn aid(home: u16) -> AgentId {
        AgentId::new(home, SimTime::from_millis(3), 1)
    }

    #[test]
    fn node_msgs_roundtrip() {
        roundtrip(NodeMsg::Client(ClientRequest {
            id: 1,
            op: Operation::Write { key: 2, value: 3 },
        }));
        roundtrip(NodeMsg::Agent(AgentEnvelope::MigrateAck {
            agent: aid(1),
            hop: 2,
            horizon: Default::default(),
        }));
        roundtrip(NodeMsg::Update(UpdateMsg {
            agent: aid(1),
            attempt: 2,
            incarnation: 1,
            reply_to: 4,
            requests: vec![WriteRequest {
                id: 9,
                client: 8,
                key: 7,
                value: 6,
                arrived: SimTime::from_millis(5),
            }],
            tie_certificate: Some(vec![aid(2), aid(3)]),
        }));
        roundtrip(NodeMsg::Commit(CommitMsg {
            agent: aid(1),
            records: vec![CommitRecord {
                version: 1,
                key: 2,
                value: 3,
                agent: aid(1).key(),
                request: 9,
                committed_at: SimTime::from_millis(11),
            }],
        }));
        roundtrip(NodeMsg::Release { agent: aid(1) });
        roundtrip(NodeMsg::LlQuery {
            agent: aid(1),
            reply_to: 2,
        });
        roundtrip(NodeMsg::LlQueryKeyed {
            agent: aid(1),
            key: 6,
            reply_to: 2,
        });
        roundtrip(NodeMsg::Sync(SyncMsg::Pull { from_version: 0 }));
        roundtrip(NodeMsg::RAgent(AgentEnvelope::MigrateAck {
            agent: aid(4),
            hop: 1,
            horizon: Default::default(),
        }));
    }

    #[test]
    fn agent_replies_roundtrip() {
        let reply = AgentReply::UpdateAck {
            node: 1,
            attempt: 3,
            positive: true,
            store_version: 5,
            last_update: SimTime::from_millis(7),
            fenced: false,
        };
        let bytes = marp_wire::to_bytes(&reply);
        assert_eq!(marp_wire::from_bytes::<AgentReply>(&bytes).unwrap(), reply);

        let mut board = LockingTable::new();
        board.merge(
            0,
            LlSnapshot {
                version: 1,
                taken_at: SimTime::from_millis(1),
                queue: vec![aid(4)],
            },
        );
        let mut ul = UpdatedList::new();
        ul.record(aid(5), SimTime::from_millis(1));
        let reply = AgentReply::LlInfo {
            node: 2,
            snapshot: LlSnapshot {
                version: 2,
                taken_at: SimTime::from_millis(2),
                queue: vec![aid(1), aid(2)],
            },
            board,
            ul,
        };
        let bytes = marp_wire::to_bytes(&reply);
        assert_eq!(marp_wire::from_bytes::<AgentReply>(&bytes).unwrap(), reply);
    }

    #[test]
    fn unknown_tags_rejected() {
        let bytes = Bytes::from_static(&[99]);
        assert!(marp_wire::from_bytes::<NodeMsg>(&bytes).is_err());
        assert!(marp_wire::from_bytes::<AgentReply>(&bytes).is_err());
    }

    #[test]
    fn wrappers_produce_decodable_node_msgs() {
        let wrapped = wrap_sync(SyncMsg::Pull { from_version: 3 });
        assert!(matches!(
            marp_wire::from_bytes::<NodeMsg>(&wrapped).unwrap(),
            NodeMsg::Sync(SyncMsg::Pull { from_version: 3 })
        ));
        let wrapped = wrap_client_request(ClientRequest {
            id: 4,
            op: Operation::Read { key: 1 },
        });
        assert!(matches!(
            marp_wire::from_bytes::<NodeMsg>(&wrapped).unwrap(),
            NodeMsg::Client(_)
        ));
        let wrapped = wrap_agent_envelope(AgentEnvelope::MigrateAck {
            agent: aid(1),
            hop: 0,
            horizon: Default::default(),
        });
        assert!(matches!(
            marp_wire::from_bytes::<NodeMsg>(&wrapped).unwrap(),
            NodeMsg::Agent(_)
        ));
    }
}
