//! The agent-side Locking Table (LT) and the priority calculation.
//!
//! Paper §3.2/§3.3: each agent accumulates, server by server, a table of
//! Locking List snapshots. "On visiting a replicated server, a mobile
//! agent learns about which mobile agents have higher ranks than it does
//! in the server's LL. It will carry the information with it when it
//! travels from site to site […] After it accumulates enough
//! information, the mobile agent knows which mobile agent has the
//! highest priority to request the lock."
//!
//! # Winning rules
//!
//! 1. **Outright majority** (the paper's main rule): an agent that is
//!    top of the LL at a *strict majority* of the N servers wins.
//! 2. **Stuck-configuration resolution** (the paper's tie rule,
//!    generalized): the paper breaks ties by agent identifier when `M`
//!    agents hold `S` tops each and `S + (N − M·S) < N/2`. Read
//!    literally, that condition both deadlocks for some N (e.g. N = 4,
//!    M = 2, S = 2) and misses stuck configurations where a third agent
//!    tops the remaining servers (N = 5, tops 2/2/1). We implement the
//!    evidently intended semantics: once an agent has *full coverage*
//!    (a snapshot from, or an unavailability declaration for, every
//!    server) and **no agent can still reach a majority** — tops can
//!    only grow by claiming servers whose effective queue is empty,
//!    since new lock requests append at the tail — the configuration
//!    cannot change until someone commits, so the deterministic rule
//!    "most tops, then smallest agent id" picks the winner. Every agent
//!    evaluates the same rule, and the winner's claim is *validated* by
//!    the majority-ACK reservation round (see `DESIGN.md`), so a stale
//!    view can delay but never violate mutual exclusion.

use bytes::{Bytes, BytesMut};
use marp_agent::AgentId;
use marp_replica::{LlSnapshot, UpdatedList};
use marp_sim::NodeId;
use marp_wire::{Wire, WireError};
use std::collections::BTreeMap;

/// The travelling Locking Table: the freshest known LL snapshot per
/// server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LockingTable {
    snapshots: BTreeMap<NodeId, LlSnapshot>,
}

impl LockingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge a snapshot of `server`'s LL, keeping the newer one.
    pub fn merge(&mut self, server: NodeId, snapshot: LlSnapshot) {
        match self.snapshots.get(&server) {
            Some(existing) if !existing.is_older_than(&snapshot) => {}
            _ => {
                self.snapshots.insert(server, snapshot);
            }
        }
    }

    /// Merge every entry of another table (agents leave their LT at
    /// servers; later visitors pick it up — the paper's information
    /// sharing).
    pub fn merge_table(&mut self, other: &LockingTable) {
        for (&server, snapshot) in &other.snapshots {
            self.merge(server, snapshot.clone());
        }
    }

    /// The snapshot held for `server`, if any.
    pub fn snapshot(&self, server: NodeId) -> Option<&LlSnapshot> {
        self.snapshots.get(&server)
    }

    /// Number of servers with known snapshots.
    pub fn known_servers(&self) -> usize {
        self.snapshots.len()
    }

    /// Iterate over `(server, snapshot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &LlSnapshot)> {
        self.snapshots.iter().map(|(&s, snap)| (s, snap))
    }

    /// The *effective top* of a server's queue: the first agent not
    /// known to have finished already (stale snapshots may still list
    /// committed agents).
    pub fn effective_top(&self, server: NodeId, finished: &UpdatedList) -> Option<AgentId> {
        self.snapshots
            .get(&server)?
            .queue
            .iter()
            .find(|a| !finished.contains(**a))
            .copied()
    }

    /// Count, for every agent, the servers whose effective top it is.
    pub fn top_counts(&self, finished: &UpdatedList) -> BTreeMap<AgentId, usize> {
        let mut counts = BTreeMap::new();
        for &server in self.snapshots.keys() {
            if let Some(top) = self.effective_top(server, finished) {
                *counts.entry(top).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Number of servers whose known queue contains `agent` — the
    /// agent's *presence*. A claim can only be validated at servers
    /// where the claimant is enqueued, so the stuck-configuration rule
    /// requires presence at a strict majority (this is also exactly
    /// Theorem 3's lower bound of ⌈(N+1)/2⌉ visits).
    pub fn presence_count(&self, agent: AgentId) -> usize {
        self.snapshots
            .values()
            .filter(|snap| snap.queue.contains(&agent))
            .count()
    }

    /// The table's knowledge horizon: for every known server, the
    /// version of the snapshot held. Receivers advertise this so
    /// senders can delta-encode (ship only snapshots strictly newer
    /// than the receiver's horizon).
    pub fn horizon(&self) -> BTreeMap<NodeId, u64> {
        self.snapshots
            .iter()
            .map(|(&server, snap)| (server, snap.version))
            .collect()
    }

    /// Drop every snapshot the `horizon` already covers (entry version
    /// ≤ the horizon's version for that server). What remains is exactly
    /// the delta a receiver with that horizon still needs; merging the
    /// delta into the receiver's table yields the same result as merging
    /// the full table (proved by property test).
    pub fn prune_covered_by(&mut self, horizon: &BTreeMap<NodeId, u64>) {
        self.snapshots
            .retain(|server, snap| horizon.get(server).is_none_or(|&v| snap.version > v));
    }

    /// Remove one server's snapshot (used when migrating *to* that
    /// server: its own LL is re-read on arrival, so carrying a snapshot
    /// of it is always dead weight).
    pub fn drop_server(&mut self, server: NodeId) {
        self.snapshots.remove(&server);
    }

    /// Every agent appearing anywhere in the table and not finished —
    /// used as the tie certificate (the set of rivals the claimed winner
    /// knows about).
    pub fn known_agents(&self, finished: &UpdatedList) -> Vec<AgentId> {
        let mut agents: Vec<AgentId> = self
            .snapshots
            .values()
            .flat_map(|snap| snap.queue.iter().copied())
            .filter(|a| !finished.contains(*a))
            .collect();
        agents.sort_unstable();
        agents.dedup();
        agents
    }
}

impl Wire for LockingTable {
    fn encode(&self, buf: &mut BytesMut) {
        self.snapshots.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(LockingTable {
            snapshots: BTreeMap::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.snapshots.encoded_len()
    }
}

/// Result of a priority evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Priority {
    /// This agent holds the distributed lock.
    Win {
        /// True when the win came from stuck-configuration resolution
        /// rather than an outright majority of tops.
        via_tie: bool,
        /// For tie wins: the rivals the winner knows about; servers use
        /// it to validate the claim against their live LLs.
        certificate: Vec<AgentId>,
    },
    /// Not decidable in this agent's favour yet.
    NotYet,
}

/// Strict-majority threshold for `n` replicas (`⌊n/2⌋ + 1`).
pub fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// Largest object key a packed knowledge-horizon slot can carry
/// (48 bits; see [`pack_horizon_slot`]). Queues for larger keys simply
/// are not advertised in horizons — pruning against them is only an
/// optimization, so correctness is unaffected.
pub const MAX_HORIZON_KEY: u64 = (1 << 48) - 1;

/// Pack a `(object key, server)` knowledge-horizon coordinate into one
/// slot id: `key << 16 | server`. Key-0 slots are numerically equal to
/// the bare server id, so a single-key deployment's horizon maps are
/// byte-identical to the pre-keyspace `server → version` encoding.
pub fn pack_horizon_slot(key: u64, server: NodeId) -> u64 {
    debug_assert!(key <= MAX_HORIZON_KEY);
    (key << 16) | u64::from(server)
}

/// Inverse of [`pack_horizon_slot`].
pub fn unpack_horizon_slot(slot: u64) -> (u64, NodeId) {
    (slot >> 16, (slot & 0xffff) as NodeId)
}

/// Project a packed horizon map onto one object key: the per-server
/// snapshot-version horizon an agent for `key` can prune its Locking
/// Table against.
pub fn horizon_for_key(packed: &BTreeMap<u64, u64>, key: u64) -> BTreeMap<NodeId, u64> {
    packed
        .iter()
        .filter_map(|(&slot, &version)| {
            let (k, server) = unpack_horizon_slot(slot);
            (k == key).then_some((server, version))
        })
        .collect()
}

/// Evaluate the priority rules for agent `me` over `n` replica servers.
///
/// `unavailable` lists servers this agent has declared unreachable —
/// they count toward coverage (we will never get their snapshot) but
/// never toward anyone's potential.
pub fn decide(
    lt: &LockingTable,
    me: AgentId,
    n: usize,
    finished: &UpdatedList,
    unavailable: &[NodeId],
) -> Priority {
    let maj = majority(n);
    let counts = lt.top_counts(finished);
    let my_tops = counts.get(&me).copied().unwrap_or(0);
    if my_tops >= maj {
        return Priority::Win {
            via_tie: false,
            certificate: Vec::new(),
        };
    }

    // Stuck-configuration resolution requires full coverage: a snapshot
    // or an unavailability declaration for every server.
    let covered = (0..n as NodeId).all(|s| lt.snapshot(s).is_some() || unavailable.contains(&s));
    if !covered {
        return Priority::NotYet;
    }

    // Servers whose effective queue is empty are the only ones whose top
    // can change without a commit (new requests append at the tail).
    // Servers this agent has declared unavailable cannot be claimed by
    // anyone right now, even if a stale gossip snapshot shows them
    // empty — counting them would wedge every agent in NotYet while a
    // replica is down.
    let claimable = (0..n as NodeId)
        .filter(|&s| {
            !unavailable.contains(&s)
                && lt.snapshot(s).is_some()
                && lt.effective_top(s, finished).is_none()
        })
        .count();

    // If any agent could still assemble an outright majority, wait.
    let best = counts.values().copied().max().unwrap_or(0);
    if best + claimable >= maj || my_tops + claimable >= maj {
        return Priority::NotYet;
    }

    // Nobody can reach a majority until a commit happens — but nobody
    // has committed and nobody will: resolve deterministically by
    // (most tops, then smallest agent id). An empty tally means there is
    // nothing to resolve yet.
    let Some(winner) = counts
        .iter()
        .map(|(&agent, &tops)| (std::cmp::Reverse(tops), agent))
        .min()
        .map(|(_, agent)| agent)
    else {
        return Priority::NotYet;
    };
    if winner == me {
        // A stuck-rule win is only claimable where the winner is
        // enqueued: servers validate a tie certificate against their
        // live LL and refuse claimants they have never seen. Without
        // presence at a strict majority the claim can never assemble a
        // positive quorum — the agent must keep travelling instead
        // (Theorem 3's lower bound, enforced structurally).
        if lt.presence_count(me) < maj {
            return Priority::NotYet;
        }
        let certificate = lt
            .known_agents(finished)
            .into_iter()
            .filter(|&a| a != me)
            .collect();
        return Priority::Win {
            via_tie: true,
            certificate,
        };
    }
    Priority::NotYet
}

/// Full priority ranking (most tops first, then agent id) — the paper's
/// extension where agents determine "not only the first mobile agent who
/// will obtain the lock next, but also the second agent, the third
/// agent, etc."
pub fn ranking(lt: &LockingTable, finished: &UpdatedList) -> Vec<(AgentId, usize)> {
    let counts = lt.top_counts(finished);
    let mut ranked: Vec<(AgentId, usize)> = counts.into_iter().collect();
    ranked.sort_by_key(|&(agent, tops)| (std::cmp::Reverse(tops), agent));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_sim::SimTime;

    fn aid(home: u16) -> AgentId {
        AgentId::new(home, SimTime::from_millis(u64::from(home)), 0)
    }

    fn snap(at_ms: u64, queue: &[AgentId]) -> LlSnapshot {
        LlSnapshot {
            version: at_ms,
            taken_at: SimTime::from_millis(at_ms),
            queue: queue.to_vec(),
        }
    }

    /// Build an LT where server `i`'s queue is `queues[i]`.
    fn table(queues: &[&[AgentId]]) -> LockingTable {
        let mut lt = LockingTable::new();
        for (server, queue) in queues.iter().enumerate() {
            lt.merge(server as NodeId, snap(1, queue));
        }
        lt
    }

    #[test]
    fn majority_threshold() {
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(6), 4);
    }

    #[test]
    fn merge_keeps_newer_snapshot() {
        let mut lt = LockingTable::new();
        let a = aid(1);
        let b = aid(2);
        lt.merge(0, snap(5, &[a]));
        lt.merge(0, snap(3, &[b])); // older, ignored
        assert_eq!(lt.snapshot(0).unwrap().top(), Some(a));
        lt.merge(0, snap(9, &[b])); // newer, replaces
        assert_eq!(lt.snapshot(0).unwrap().top(), Some(b));
        assert_eq!(lt.known_servers(), 1);
    }

    #[test]
    fn merge_table_combines_servers() {
        let a = aid(1);
        let mut lt1 = LockingTable::new();
        lt1.merge(0, snap(1, &[a]));
        let mut lt2 = LockingTable::new();
        lt2.merge(1, snap(1, &[a]));
        lt2.merge(0, snap(5, &[]));
        lt1.merge_table(&lt2);
        assert_eq!(lt1.known_servers(), 2);
        assert_eq!(lt1.snapshot(0).unwrap().queue.len(), 0);
    }

    #[test]
    fn effective_top_skips_finished_agents() {
        let done = aid(9);
        let live = aid(1);
        let lt = table(&[&[done, live]]);
        let mut finished = UpdatedList::new();
        assert_eq!(lt.effective_top(0, &finished), Some(done));
        finished.record(done, SimTime::ZERO);
        assert_eq!(lt.effective_top(0, &finished), Some(live));
    }

    #[test]
    fn outright_majority_wins() {
        let me = aid(1);
        let rival = aid(2);
        // 5 servers: me top at 3, rival at 2.
        let lt = table(&[&[me], &[me], &[me, rival], &[rival, me], &[rival]]);
        let finished = UpdatedList::new();
        assert_eq!(
            decide(&lt, me, 5, &finished, &[]),
            Priority::Win {
                via_tie: false,
                certificate: vec![]
            }
        );
        assert_eq!(decide(&lt, rival, 5, &finished, &[]), Priority::NotYet);
    }

    #[test]
    fn no_win_without_coverage() {
        let me = aid(1);
        // Top at 2 of 5 known servers; 3 unknown.
        let lt = table(&[&[me], &[me]]);
        let finished = UpdatedList::new();
        assert_eq!(decide(&lt, me, 5, &finished, &[]), Priority::NotYet);
    }

    #[test]
    fn paper_tie_case_resolved_by_id() {
        // N = 4: A tops 2, B tops 2 — the paper's formula (read as ≤)
        // fires; smaller id wins.
        let a = aid(1);
        let b = aid(2);
        let lt = table(&[&[a, b], &[a, b], &[b, a], &[b, a]]);
        let finished = UpdatedList::new();
        let decision_a = decide(&lt, a, 4, &finished, &[]);
        match decision_a {
            Priority::Win {
                via_tie: true,
                certificate,
            } => assert_eq!(certificate, vec![b]),
            other => panic!("expected tie win for a, got {other:?}"),
        }
        assert_eq!(decide(&lt, b, 4, &finished, &[]), Priority::NotYet);
    }

    #[test]
    fn three_way_stuck_configuration_resolves() {
        // N = 5, tops 2/2/1 — the literal paper formula misses this but
        // it is provably stuck; most-tops-then-id picks a.
        let a = aid(1);
        let b = aid(2);
        let c = aid(3);
        let lt = table(&[&[a, c], &[a, b], &[b, a], &[b, c], &[c, a, b]]);
        let finished = UpdatedList::new();
        match decide(&lt, a, 5, &finished, &[]) {
            Priority::Win {
                via_tie: true,
                certificate,
            } => {
                assert!(certificate.contains(&b) && certificate.contains(&c));
                assert!(!certificate.contains(&a));
            }
            other => panic!("expected tie win for a, got {other:?}"),
        }
        assert_eq!(decide(&lt, b, 5, &finished, &[]), Priority::NotYet);
        assert_eq!(decide(&lt, c, 5, &finished, &[]), Priority::NotYet);
    }

    #[test]
    fn empty_servers_block_tie_resolution() {
        // N = 5: a tops 2, b tops 2, server 4's queue is empty — either
        // could still claim it and reach majority, so nobody tie-wins.
        let a = aid(1);
        let b = aid(2);
        let lt = table(&[&[a], &[a], &[b], &[b], &[]]);
        let finished = UpdatedList::new();
        assert_eq!(decide(&lt, a, 5, &finished, &[]), Priority::NotYet);
        assert_eq!(decide(&lt, b, 5, &finished, &[]), Priority::NotYet);
    }

    #[test]
    fn unavailable_servers_count_toward_coverage() {
        // N = 5, server 4 declared unavailable; a tops 2, b tops 2 of
        // the 4 reachable. Nobody can reach majority(5) = 3 → stuck →
        // a wins by id.
        let a = aid(1);
        let b = aid(2);
        let lt = table(&[&[a, b], &[a, b], &[b, a], &[b, a]]);
        let finished = UpdatedList::new();
        assert!(matches!(
            decide(&lt, a, 5, &finished, &[4]),
            Priority::Win { via_tie: true, .. }
        ));
        // Without the declaration there is no coverage and no decision.
        assert_eq!(decide(&lt, a, 5, &finished, &[]), Priority::NotYet);
    }

    #[test]
    fn finished_agents_do_not_block() {
        // The previous winner w still sits atop stale snapshots; once in
        // the finished list, me's effective tops give a majority.
        let w = aid(9);
        let me = aid(1);
        let lt = table(&[&[w, me], &[w, me], &[me], &[], &[]]);
        let mut finished = UpdatedList::new();
        assert_eq!(decide(&lt, me, 5, &finished, &[]), Priority::NotYet);
        finished.record(w, SimTime::ZERO);
        assert_eq!(
            decide(&lt, me, 5, &finished, &[]),
            Priority::Win {
                via_tie: false,
                certificate: vec![]
            }
        );
    }

    #[test]
    fn agreement_on_stuck_winner_is_symmetric() {
        // Theorem-2 style check: with identical tables, at most one of
        // several agents decides Win.
        let agents = [aid(1), aid(2), aid(3)];
        let lt = table(&[
            &[agents[0]],
            &[agents[1]],
            &[agents[2]],
            &[agents[0], agents[1]],
            &[agents[1], agents[0]],
        ]);
        let finished = UpdatedList::new();
        let wins: Vec<AgentId> = agents
            .iter()
            .copied()
            .filter(|&a| matches!(decide(&lt, a, 5, &finished, &[]), Priority::Win { .. }))
            .collect();
        assert!(wins.len() <= 1, "multiple winners: {wins:?}");
    }

    #[test]
    fn single_server_cluster_wins_on_its_own_top() {
        let me = aid(1);
        let lt = table(&[&[me]]);
        let finished = UpdatedList::new();
        assert_eq!(
            decide(&lt, me, 1, &finished, &[]),
            Priority::Win {
                via_tie: false,
                certificate: vec![]
            }
        );
    }

    #[test]
    fn two_server_cluster_needs_both_tops() {
        let me = aid(1);
        let rival = aid(2);
        let finished = UpdatedList::new();
        // Top at one of two: majority(2) = 2, not enough; rival tops the
        // other → stuck, but me is min id with presence at both.
        let lt = table(&[&[me, rival], &[rival, me]]);
        assert!(matches!(
            decide(&lt, me, 2, &finished, &[]),
            Priority::Win { via_tie: true, .. }
        ));
        assert_eq!(decide(&lt, rival, 2, &finished, &[]), Priority::NotYet);
        // Top at both → outright.
        let lt = table(&[&[me], &[me, rival]]);
        assert!(matches!(
            decide(&lt, me, 2, &finished, &[]),
            Priority::Win { via_tie: false, .. }
        ));
    }

    #[test]
    fn stuck_win_requires_majority_presence() {
        // b and c top two servers each (server 4 unavailable): the
        // stuck winner by (most tops, min id) is b — but b is enqueued
        // at only two of five Locking Lists, so its claim could never
        // be validated at a majority. decide must hold everyone at
        // NotYet until b gains presence.
        let b = aid(2);
        let c = aid(3);
        let lt = table(&[&[c], &[b], &[b], &[c]]);
        let finished = UpdatedList::new();
        assert_eq!(decide(&lt, b, 5, &finished, &[4]), Priority::NotYet);
        assert_eq!(decide(&lt, c, 5, &finished, &[4]), Priority::NotYet);
        // Once b is enqueued at a third server, its claim unlocks.
        let lt = table(&[&[c, b], &[b], &[b], &[c]]);
        assert!(matches!(
            decide(&lt, b, 5, &finished, &[4]),
            Priority::Win { via_tie: true, .. }
        ));
        assert_eq!(decide(&lt, c, 5, &finished, &[4]), Priority::NotYet);
    }

    #[test]
    fn presence_count_counts_queues_containing_agent() {
        let a = aid(1);
        let b = aid(2);
        let lt = table(&[&[a, b], &[b], &[], &[a]]);
        assert_eq!(lt.presence_count(a), 2);
        assert_eq!(lt.presence_count(b), 2);
        assert_eq!(lt.presence_count(aid(9)), 0);
    }

    #[test]
    fn ranking_orders_by_tops_then_id() {
        let a = aid(1);
        let b = aid(2);
        let c = aid(3);
        let lt = table(&[&[b], &[b], &[a], &[c], &[a]]);
        let finished = UpdatedList::new();
        let ranked = ranking(&lt, &finished);
        // a and b both top 2 servers; a is the smaller (older) id.
        assert_eq!(ranked[0], (a, 2));
        assert_eq!(ranked[1], (b, 2));
        assert_eq!(ranked[2], (c, 1));
    }

    #[test]
    fn wire_roundtrip() {
        let a = aid(1);
        let lt = table(&[&[a], &[], &[a, aid(2)]]);
        let bytes = marp_wire::to_bytes(&lt);
        assert_eq!(marp_wire::from_bytes::<LockingTable>(&bytes).unwrap(), lt);
    }
}
