//! MARP protocol configuration.

use marp_agent::{AgentConfig, ItineraryPolicy};
use marp_replica::{BatchConfig, ServerConfig};
use std::time::Duration;

/// Deliberate protocol mutations for checker self-tests.
///
/// The `marp-mcheck` model checker proves it can *find* bugs by seeding
/// one and demanding a counterexample. These are the seeded bugs; they
/// must never be enabled outside verification tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaosMode {
    /// Faithful protocol (the only mode real deployments use).
    #[default]
    None,
    /// Insert lock requests at the *front* of the Locking List instead
    /// of the back, breaking the FIFO assumption behind Theorem 1. On
    /// its own the UPDATE validation round masks this (stale claimants
    /// are refused and abort), so it demonstrates the protocol's
    /// defence in depth rather than a violation.
    LlLifoInsert,
    /// Acknowledge every UPDATE positively, skipping top-of-queue
    /// validation and reservation. On its own FIFO queues mean no two
    /// agents believe they have won simultaneously, so this too is
    /// usually masked.
    BlindAcks,
    /// Both of the above: LIFO insertion manufactures two simultaneous
    /// believed-winners and blind acks let both commit — a genuine
    /// order-preservation / lost-update violation the checker must
    /// catch.
    LlLifoBlindAcks,
}

impl ChaosMode {
    /// Whether lock requests jump the Locking List queue.
    pub fn lifo_insert(self) -> bool {
        matches!(self, ChaosMode::LlLifoInsert | ChaosMode::LlLifoBlindAcks)
    }

    /// Whether UPDATE validation is skipped.
    pub fn blind_acks(self) -> bool {
        matches!(self, ChaosMode::BlindAcks | ChaosMode::LlLifoBlindAcks)
    }
}

/// All knobs of a MARP deployment. Start from [`MarpConfig::new`] and
/// override fields for ablations.
#[derive(Debug, Clone, Copy)]
pub struct MarpConfig {
    /// Number of replica servers (nodes `0..n_servers`; clients and
    /// other processes use higher node ids).
    pub n_servers: usize,
    /// Request batching before an agent is dispatched (§3.2; E11).
    pub batch: BatchConfig,
    /// Server-core settings (lock lease).
    pub server: ServerConfig,
    /// Agent migration timeout and retry budget.
    pub migration: AgentConfig,
    /// Itinerary ordering (E9).
    pub itinerary: ItineraryPolicy,
    /// Whether agents share locking information through server boards
    /// (§3.3; E10).
    pub gossip: bool,
    /// Delta-encode the Locking Table an agent carries across a
    /// migration: snapshots the destination already holds (per its
    /// advertised knowledge horizon) are pruned before serialization
    /// and re-merged from the destination's state on arrival. Purely a
    /// wire-size optimisation — disable to measure full-table shipping.
    pub lt_delta: bool,
    /// Adapt the batch-size trigger to the commit backlog (the §5
    /// "flexible and adaptive replication scheme" hint, E14): when many
    /// dispatched batches are still uncommitted the node coalesces more
    /// writes per agent, shedding lock contention; when the backlog
    /// clears it returns to small batches for latency.
    pub adaptive_batching: bool,
    /// How long a winner waits for UPDATE acknowledgements before
    /// aborting and re-gathering.
    pub ack_timeout: Duration,
    /// Re-poll interval for parked agents (they also rely on pushed LL
    /// change notifications; this is the fallback).
    pub park_repoll: Duration,
    /// How long a positive acknowledgement reserves the lock for the
    /// claimant before the reservation lapses.
    pub reserve_lease: Duration,
    /// Node maintenance cadence (lease purge, anti-entropy check,
    /// re-dispatch check).
    pub maintenance_interval: Duration,
    /// Re-dispatch a batch whose agent produced no commit within this
    /// bound (the agent likely died with a crashed host). Must exceed
    /// the lock lease — leases clean up a dead agent's queue entries
    /// before its work is retried — and should be generous: a live
    /// agent that merely sits in a deep contention backlog will commit
    /// eventually, and re-dispatching it creates (harmless but
    /// wasteful) duplicate commits.
    pub redispatch_timeout: Duration,
    /// Regenerate the update agent of a batch whose commits were not
    /// observed by the regeneration deadline (the agent presumably died
    /// with a crashed host). The regenerated agent carries the same
    /// request ids under a bumped incarnation: servers fence the
    /// original's claims and the store deduplicates its commits, so
    /// regeneration can never double-apply. Disable only for ablations
    /// (the chaos harness's lost-write demonstration).
    pub regeneration: bool,
    /// Seeded protocol mutation for model-checker self-tests
    /// ([`ChaosMode::None`] everywhere else).
    pub chaos: ChaosMode,
}

impl MarpConfig {
    /// Defaults tuned for the paper's LAN experiments.
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers >= 1, "need at least one replica server");
        MarpConfig {
            n_servers,
            batch: BatchConfig::default(),
            server: ServerConfig::default(),
            migration: AgentConfig::default(),
            itinerary: ItineraryPolicy::CostSorted,
            gossip: true,
            lt_delta: true,
            adaptive_batching: false,
            ack_timeout: Duration::from_millis(250),
            park_repoll: Duration::from_millis(25),
            reserve_lease: Duration::from_secs(5),
            maintenance_interval: Duration::from_millis(500),
            redispatch_timeout: Duration::from_secs(45),
            regeneration: true,
            chaos: ChaosMode::default(),
        }
    }

    /// Strict-majority threshold for this deployment.
    pub fn majority(&self) -> usize {
        crate::lt::majority(self.n_servers)
    }

    /// Scale the protocol's time constants to a deployment whose worst
    /// one-way latency is `max_latency`. The LAN defaults assume
    /// millisecond links; on a wide-area network an acknowledgement
    /// *cannot* return inside 250 ms when one hop takes 200 ms, and a
    /// timeout below the physical round trip turns every claim into an
    /// abort storm. Call this (or set the fields directly) whenever the
    /// topology is slower than a LAN.
    pub fn scaled_to_latency(mut self, max_latency: Duration) -> Self {
        let lat = max_latency.max(Duration::from_millis(1));
        // UPDATE out + ack back + scheduling slack.
        self.ack_timeout = self.ack_timeout.max(lat * 5);
        // One hop each way for a re-poll round.
        self.park_repoll = self.park_repoll.max(lat);
        // Migration send + ack, with retry slack.
        self.migration.migrate_timeout = self.migration.migrate_timeout.max(lat * 6);
        // A reservation must outlive a full claim cycle.
        self.reserve_lease = self.reserve_lease.max(self.ack_timeout * 10);
        self.server.lock_lease = self.server.lock_lease.max(self.reserve_lease * 6);
        self.redispatch_timeout = self
            .redispatch_timeout
            .max(self.server.lock_lease + self.ack_timeout * 10);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = MarpConfig::new(5);
        assert_eq!(cfg.majority(), 3);
        assert!(cfg.gossip);
        assert!(cfg.ack_timeout < cfg.reserve_lease);
        assert!(cfg.park_repoll < cfg.ack_timeout);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_servers_rejected() {
        let _ = MarpConfig::new(0);
    }

    #[test]
    fn latency_scaling_lifts_timeouts_on_wans() {
        let lan = MarpConfig::new(5).scaled_to_latency(Duration::from_millis(2));
        // A LAN keeps the defaults.
        assert_eq!(lan.ack_timeout, Duration::from_millis(250));
        let wan = MarpConfig::new(5).scaled_to_latency(Duration::from_millis(200));
        assert_eq!(wan.ack_timeout, Duration::from_millis(1000));
        assert!(wan.migration.migrate_timeout >= Duration::from_millis(1200));
        assert!(wan.reserve_lease >= wan.ack_timeout * 10);
        assert!(wan.server.lock_lease > wan.reserve_lease);
        assert!(wan.redispatch_timeout > wan.server.lock_lease);
    }
}
