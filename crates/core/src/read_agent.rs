//! The consistent-read agent — the §5 "generic method" extension.
//!
//! The paper closes by noting that MARP "is a generic method, which can
//! be used to implement different kinds of replication control
//! algorithms. The mobile agents encapsulate the data replication
//! protocols…". This module demonstrates that genericity with a second
//! agent behaviour on the same runtime: a **read agent** that gives
//! clients an optional strong read. Plain MARP reads are local and may
//! be stale; a [`marp_replica::Operation::ReadFresh`] dispatches a
//! `ReadAgent` that visits a strict majority of replicas (cheapest
//! first) and returns the freshest value it saw. Because every write
//! lands on a majority before its COMMIT round completes, a
//! majority-read intersects every completed write's quorum.

use crate::host::MarpServerState;
use bytes::{Bytes, BytesMut};
use marp_agent::{Action, AgentBehavior, AgentEnv, AgentId, Itinerary};
use marp_quorum::{QuorumCall, SuccessRule, Verdict};
use marp_replica::ClientReply;
use marp_sim::{span_id, NodeId, SpanKind, TraceEvent};
use marp_wire::{Wire, WireError};

/// What one visit observes: (applied version, key version, value if
/// present).
type Observation = (u64, u64, Option<u64>);

/// A travelling quorum-read agent.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadAgent {
    id: AgentId,
    n: u16,
    /// The client request being served.
    request: u64,
    /// Who gets the answer.
    client: NodeId,
    /// Key under inspection.
    key: u64,
    /// The visit round: first-majority-of-replicas-consulted wins, each
    /// positive reply carrying that replica's observation.
    call: QuorumCall<Observation>,
    itinerary: Itinerary,
    visited: u32,
}

impl Wire for ReadAgent {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.n.encode(buf);
        self.request.encode(buf);
        self.client.encode(buf);
        self.key.encode(buf);
        self.call.encode(buf);
        self.itinerary.encode(buf);
        self.visited.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ReadAgent {
            id: AgentId::decode(buf)?,
            n: u16::decode(buf)?,
            request: u64::decode(buf)?,
            client: NodeId::decode(buf)?,
            key: u64::decode(buf)?,
            call: QuorumCall::decode(buf)?,
            itinerary: Itinerary::decode(buf)?,
            visited: u32::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.n.encoded_len()
            + self.request.encoded_len()
            + self.client.encoded_len()
            + self.key.encoded_len()
            + self.call.encoded_len()
            + self.itinerary.encoded_len()
            + self.visited.encoded_len()
    }
}

impl ReadAgent {
    /// Create a read agent for one `ReadFresh` request.
    pub fn new(
        id: AgentId,
        cfg: &crate::MarpConfig,
        request: u64,
        client: NodeId,
        key: u64,
    ) -> Self {
        let n = cfg.n_servers as u16;
        let k = crate::lt::majority(cfg.n_servers) as u16;
        ReadAgent {
            id,
            n,
            request,
            client,
            key,
            call: QuorumCall::new(SuccessRule::FirstK { k }, 0..n, id.born),
            itinerary: Itinerary::for_system(cfg.n_servers, id.home, cfg.itinerary),
            visited: 0,
        }
    }

    /// Replicas consulted so far.
    pub fn visits(&self) -> u32 {
        self.visited
    }

    #[cfg(test)]
    fn maj(&self) -> usize {
        crate::lt::majority(usize::from(self.n))
    }

    fn read_span(&self) -> marp_sim::SpanId {
        span_id(SpanKind::Read, self.request, u64::from(self.id.home))
    }

    fn finish(&self, env: &mut AgentEnv<'_>) -> Action {
        // The freshest observation wins: highest key version, with the
        // highest applied version as tiebreak for absent keys.
        let best = self
            .call
            .positives()
            .iter()
            .map(|&(_, obs)| obs)
            .max_by_key(|&(applied, key_version, _)| (key_version, applied));
        let (applied, key_version, value) = best.unwrap_or((0, 0, None));
        env.trace(TraceEvent::ReadServed {
            node: env.here(),
            request: self.request,
            version: key_version.max(applied),
        });
        let reply = ClientReply::ReadOk {
            id: self.request,
            key: self.key,
            value,
            version: key_version.max(applied),
        };
        env.send_raw(self.client, marp_wire::to_bytes(&reply));
        env.trace(TraceEvent::SpanEnd {
            id: self.read_span(),
            kind: SpanKind::Read,
        });
        Action::Dispose
    }

    fn give_up(&self, env: &mut AgentEnv<'_>) -> Action {
        // A majority is unreachable: refuse rather than silently
        // downgrade the guarantee.
        let reply = ClientReply::Rejected { id: self.request };
        env.send_raw(self.client, marp_wire::to_bytes(&reply));
        env.trace(TraceEvent::SpanEnd {
            id: self.read_span(),
            kind: SpanKind::Read,
        });
        Action::Dispose
    }

    fn proceed(&mut self, host: &mut MarpServerState, env: &mut AgentEnv<'_>) -> Action {
        if self.call.verdict() == Some(Verdict::Won) {
            return self.finish(env);
        }
        match self.itinerary.next_destination(|to| host.route_cost(to)) {
            Some(next) => Action::Migrate(next),
            // Fewer than a majority of replicas reachable.
            None => self.give_up(env),
        }
    }
}

impl AgentBehavior for ReadAgent {
    type Host = MarpServerState;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_arrive(&mut self, host: &mut MarpServerState, env: &mut AgentEnv<'_>) -> Action {
        if self.visited == 0 {
            // First arrival (at home): the strong read begins here.
            env.trace(TraceEvent::SpanStart {
                id: self.read_span(),
                parent: 0,
                kind: SpanKind::Read,
                a: self.request,
                b: u64::from(self.id.home),
            });
        }
        self.visited += 1;
        let store = &host.core.store;
        let stored = store.get(self.key);
        self.call.offer_vote(
            env.here(),
            true,
            (
                store.applied_version_for(self.key),
                stored.map_or(0, |s| s.version),
                stored.map(|s| s.value),
            ),
        );
        self.proceed(host, env)
    }

    fn on_migrate_failed(
        &mut self,
        dest: NodeId,
        _attempts: u32,
        host: &mut MarpServerState,
        env: &mut AgentEnv<'_>,
    ) -> Action {
        self.itinerary.mark_unavailable(dest);
        self.proceed(host, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarpConfig;
    use marp_sim::SimTime;

    #[test]
    fn wire_roundtrip() {
        let cfg = MarpConfig::new(5);
        let mut agent = ReadAgent::new(AgentId::new(1, SimTime::from_millis(3), 7), &cfg, 42, 9, 5);
        agent.call.offer_vote(1, true, (3, 2, Some(20)));
        agent.visited = 1;
        let bytes = marp_wire::to_bytes(&agent);
        let back: ReadAgent = marp_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, agent);
    }

    #[test]
    fn majority_threshold_matches_cluster() {
        let cfg = MarpConfig::new(5);
        let agent = ReadAgent::new(AgentId::new(0, SimTime::ZERO, 0), &cfg, 1, 9, 1);
        assert_eq!(agent.maj(), 3);
        assert_eq!(agent.visits(), 0);
    }
}
