//! The MARP replica node: one [`Process`] combining the server core,
//! the agent runtime, request batching, and the server side of the
//! protocol (Algorithm 2).

use crate::agent::UpdateAgent;
use crate::config::MarpConfig;
use crate::host::MarpServerState;
use crate::msg::{wrap_agent_envelope, wrap_read_agent_envelope, wrap_sync, AgentReply, NodeMsg};
use crate::read_agent::ReadAgent;
use bytes::Bytes;
use marp_agent::{AgentEnvelope, AgentId, AgentRuntime};
use marp_net::RoutingTable;
use marp_quorum::{RetryPolicy, TimerMux};
use marp_replica::{RequestBatcher, ServerCore, WriteRequest};
use marp_sim::{impl_as_any, span_id, Context, NodeId, Process, SpanKind, TimerId, TraceEvent};
use std::collections::BTreeMap;

const TAG_BATCH_TICK: u64 = 100;
const TAG_MAINTENANCE: u64 = 101;
/// Timer-mux kind for per-dispatch regeneration deadlines (epoch =
/// registry sequence number). Cannot collide with the raw tags above:
/// mux tags carry kind 7 in the low byte.
const KIND_REGEN: u8 = 7;

/// A dispatch-registry entry: a batch whose agent has been launched but
/// whose commits have not all been observed locally yet. Each entry
/// carries a regeneration deadline; if it fires first, the home assumes
/// the agent died with a crashed host and launches a successor with a
/// bumped incarnation.
#[derive(Debug, Clone)]
struct OutstandingBatch {
    requests: Vec<WriteRequest>,
    /// Incarnation the current agent for this batch was launched with.
    incarnation: u32,
    /// How many agents (original + regenerations) this batch has had.
    attempts: u32,
    /// Registry sequence number — the epoch of the regeneration timer.
    seq: u64,
}

/// One MARP replica server node.
pub struct MarpNode {
    cfg: MarpConfig,
    state: MarpServerState,
    runtime: AgentRuntime<UpdateAgent>,
    read_runtime: AgentRuntime<ReadAgent>,
    batcher: RequestBatcher,
    agent_seq: u32,
    read_seq: u32,
    outstanding: BTreeMap<AgentId, OutstandingBatch>,
    /// Regeneration-deadline timers, one per registry entry.
    regen_mux: TimerMux,
    regen_seq: u64,
    /// Timer epoch → registry key, for deadline fires.
    regen_agents: BTreeMap<u64, AgentId>,
}

impl MarpNode {
    /// Build the node for server `me` with the given routing table.
    pub fn new(me: NodeId, cfg: MarpConfig, routing: RoutingTable) -> Self {
        // MARP orders commits per object key (independent keys never
        // contend), so the store runs the per-key chain discipline.
        // Single-key workloads only ever touch chain 0 and remain
        // byte-identical to the global discipline.
        let core = ServerCore::keyed(me, cfg.server, wrap_sync);
        MarpNode {
            state: MarpServerState::new(core, routing, &cfg),
            runtime: AgentRuntime::new(cfg.migration, wrap_agent_envelope),
            read_runtime: AgentRuntime::new(cfg.migration, wrap_read_agent_envelope),
            batcher: RequestBatcher::new(cfg.batch),
            agent_seq: 0,
            // Read agents draw from the upper sequence range so their
            // ids can never collide with update agents created in the
            // same instant.
            read_seq: 1 << 31,
            outstanding: BTreeMap::new(),
            regen_mux: TimerMux::new(),
            regen_seq: 0,
            regen_agents: BTreeMap::new(),
            cfg,
        }
    }

    /// The server-side state (for tests and experiment harnesses).
    pub fn state(&self) -> &MarpServerState {
        &self.state
    }

    /// Number of update agents currently hosted here.
    pub fn resident_agents(&self) -> usize {
        self.runtime.resident_count()
    }

    /// Number of read agents currently hosted here.
    pub fn resident_read_agents(&self) -> usize {
        self.read_runtime.resident_count()
    }

    /// The update-agent runtime (inspection: resident agents and their
    /// behaviour state).
    pub fn update_runtime(&self) -> &AgentRuntime<UpdateAgent> {
        &self.runtime
    }

    /// Batches dispatched from here whose commits have not yet been
    /// observed locally.
    pub fn outstanding_batches(&self) -> usize {
        self.outstanding.len()
    }

    fn me(&self) -> NodeId {
        self.state.core.me()
    }

    /// Dispatch agents for a ripe batch. Agents are key-uniform — one
    /// agent per object key present in the batch — so a batch mixing
    /// keys fans out into independent agents whose lock acquisitions
    /// cannot block each other. Single-key batches (every paper
    /// scenario) pass through as exactly one launch.
    ///
    /// SEAM(sharding): this is also where a key→replica-subset mapping
    /// would take effect — each per-key agent would receive an
    /// itinerary drawn from `replica_set_for_key(key)` instead of the
    /// full server set. Partial replication is intentionally *not*
    /// implemented; see `docs/KEYSPACE.md` §"The sharding seam".
    fn dispatch_agent(&mut self, batch: Vec<WriteRequest>, ctx: &mut dyn Context) {
        if batch.windows(2).all(|w| w[0].key == w[1].key) {
            self.launch(batch, 0, 1, ctx);
            return;
        }
        let mut by_key: BTreeMap<u64, Vec<WriteRequest>> = BTreeMap::new();
        for req in batch {
            by_key.entry(req.key).or_default().push(req);
        }
        for (_, group) in by_key {
            self.launch(group, 0, 1, ctx);
        }
    }

    /// The replica subset holding `key` — today, every server: MARP as
    /// reproduced here is fully replicated, exactly as in the paper.
    ///
    /// SEAM(sharding): a real keyspace partitioning scheme (consistent
    /// hashing, range tables, ...) would plug in here and return a
    /// proper subset; itineraries, UPDATE/COMMIT broadcast targets, and
    /// quorum sizes would all need to draw from it. Left unimplemented
    /// on purpose — the protocol layers above are already keyed, so
    /// this function is the single point where placement policy enters.
    #[allow(dead_code)]
    fn replica_set_for_key(&self, _key: u64) -> Vec<NodeId> {
        (0..self.cfg.n_servers as NodeId).collect()
    }

    /// Launch one update agent for `batch` (original dispatch or a
    /// regeneration), register it in the dispatch registry, and arm its
    /// regeneration deadline.
    fn launch(
        &mut self,
        batch: Vec<WriteRequest>,
        incarnation: u32,
        attempts: u32,
        ctx: &mut dyn Context,
    ) {
        if batch.is_empty() {
            return;
        }
        let id = AgentId::new(self.me(), ctx.now(), self.agent_seq);
        self.agent_seq += 1;
        ctx.trace(TraceEvent::AgentDispatched {
            agent: id.key(),
            home: self.me(),
            batch: batch.len(),
        });
        // Dispatch span: the agent's whole life (closed at disposal by
        // the runtime). Each carried request's span links into it.
        let dispatch_span = span_id(SpanKind::Dispatch, id.key(), 0);
        ctx.trace(TraceEvent::SpanStart {
            id: dispatch_span,
            parent: 0,
            kind: SpanKind::Dispatch,
            a: id.key(),
            b: 0,
        });
        for req in &batch {
            ctx.trace(TraceEvent::SpanLink {
                from: span_id(SpanKind::Request, req.id, u64::from(self.me())),
                to: dispatch_span,
            });
        }
        let seq = self.regen_seq;
        self.regen_seq += 1;
        self.outstanding.insert(
            id,
            OutstandingBatch {
                requests: batch.clone(),
                incarnation,
                attempts,
                seq,
            },
        );
        self.regen_agents.insert(seq, id);
        // The deadline backs off linearly with the attempt count so a
        // batch stuck in a deep contention backlog is not regenerated
        // at full cadence forever.
        let deadline = RetryPolicy::linear(self.cfg.redispatch_timeout, 4).next_delay(attempts);
        ctx.set_timer(deadline, self.regen_mux.arm(KIND_REGEN, seq));
        let agent = UpdateAgent::new(id, &self.cfg, batch).with_incarnation(incarnation);
        self.runtime.spawn(agent, &mut self.state, ctx);
    }

    /// A regeneration deadline fired: if the batch still has
    /// uncommitted requests, its agent is presumed lost — launch a
    /// successor carrying the remainder under a bumped incarnation.
    fn regen_deadline(&mut self, seq: u64, ctx: &mut dyn Context) {
        let Some(id) = self.regen_agents.remove(&seq) else {
            return;
        };
        let Some(batch) = self.outstanding.remove(&id) else {
            return;
        };
        let remaining: Vec<WriteRequest> = batch
            .requests
            .into_iter()
            .filter(|r| !self.state.core.store.request_applied(r.id))
            .collect();
        if remaining.is_empty() {
            return;
        }
        if !self.cfg.regeneration {
            // Ablation mode: the loss is explicit in the trace, never
            // silent.
            ctx.trace(TraceEvent::Custom {
                kind: "regeneration-disabled",
                a: id.key(),
                b: remaining.len() as u64,
            });
            return;
        }
        ctx.trace(TraceEvent::Custom {
            kind: "agent-regenerated",
            a: id.key(),
            b: remaining.len() as u64,
        });
        self.launch(remaining, batch.incarnation + 1, batch.attempts + 1, ctx);
    }

    fn send_to_agent(&self, at: NodeId, agent: AgentId, reply: &AgentReply, ctx: &mut dyn Context) {
        let envelope = AgentEnvelope::ToAgent {
            agent,
            payload: marp_wire::to_bytes(reply),
        };
        ctx.send(at, wrap_agent_envelope(envelope));
    }

    fn handle_node_msg(&mut self, from: NodeId, msg: NodeMsg, ctx: &mut dyn Context) {
        match msg {
            NodeMsg::Client(request) => {
                match self.state.core.handle_client_request(from, request, ctx) {
                    marp_replica::ClientAction::Done => {}
                    marp_replica::ClientAction::Write(write) => {
                        if self.cfg.adaptive_batching {
                            self.adapt_batch_size(ctx);
                        }
                        if let Some(batch) = self.batcher.push(write, ctx.now()) {
                            self.dispatch_agent(batch, ctx);
                        }
                    }
                    marp_replica::ClientAction::FreshRead(read) => {
                        let id = AgentId::new(self.me(), ctx.now(), self.read_seq);
                        self.read_seq += 1;
                        let agent = ReadAgent::new(id, &self.cfg, read.id, read.client, read.key);
                        self.read_runtime.spawn(agent, &mut self.state, ctx);
                    }
                }
            }
            NodeMsg::Agent(envelope) => {
                self.runtime
                    .handle_envelope(from, envelope, &mut self.state, ctx);
            }
            NodeMsg::RAgent(envelope) => {
                self.read_runtime
                    .handle_envelope(from, envelope, &mut self.state, ctx);
            }
            NodeMsg::Update(update) => {
                let ack = self.state.handle_update(&update, ctx);
                self.send_to_agent(update.reply_to, update.agent, &ack, ctx);
            }
            NodeMsg::Commit(commit) => {
                let key = commit.records.first().map_or(0, |r| r.key);
                let notify = self.state.handle_commit(commit.agent, commit.records, ctx);
                // Push the LL change to the remaining queued agents so
                // parked agents learn promptly that the winner is gone.
                if !notify.is_empty() {
                    let info = self.state.ll_info(key, ctx.now());
                    for (host, agent) in notify {
                        self.send_to_agent(host, agent, &info, ctx);
                    }
                }
            }
            NodeMsg::Release { agent } => self.state.handle_release(agent),
            NodeMsg::LlQuery { agent, reply_to } => {
                // Legacy query form: always the key-0 locking list.
                let info = self.state.handle_ll_query(agent, 0, reply_to, ctx.now());
                self.send_to_agent(reply_to, agent, &info, ctx);
            }
            NodeMsg::LlQueryKeyed {
                agent,
                key,
                reply_to,
            } => {
                let info = self.state.handle_ll_query(agent, key, reply_to, ctx.now());
                self.send_to_agent(reply_to, agent, &info, ctx);
            }
            NodeMsg::Sync(sync) => self.state.core.handle_sync(from, sync, ctx),
        }
    }

    fn arm_node_timers(&self, ctx: &mut dyn Context) {
        ctx.set_timer(self.batcher.max_wait(), TAG_BATCH_TICK);
        ctx.set_timer(self.cfg.maintenance_interval, TAG_MAINTENANCE);
    }

    /// Adaptive batching (the §5 adaptivity hint): track the commit
    /// backlog — one outstanding batch means the pipe is busy but
    /// healthy; more means our agents are queueing behind each other
    /// and coalescing is cheaper than competing for the lock per
    /// request.
    fn adapt_batch_size(&mut self, ctx: &mut dyn Context) {
        let target = self.outstanding.len().clamp(1, 32);
        if target != self.batcher.max_batch() {
            ctx.trace(TraceEvent::Custom {
                kind: "adaptive-batch-size",
                a: target as u64,
                b: u64::from(self.me()),
            });
            self.batcher.set_max_batch(target);
        }
    }

    fn maintenance(&mut self, ctx: &mut dyn Context) {
        self.state.maintain(ctx);
        if self.cfg.adaptive_batching {
            self.adapt_batch_size(ctx);
        }
        let peer = (self.me() + 1) % self.cfg.n_servers as NodeId;
        if peer != self.me() {
            self.state.core.pull_if_behind(peer, ctx);
        }
        // Retire registry entries whose batch fully committed; their
        // regeneration deadlines are disarmed. (A deadline that fires
        // before this sweep re-checks the store itself, so the sweep is
        // an optimization, not a correctness requirement.)
        let done: Vec<AgentId> = self
            .outstanding
            .iter()
            .filter(|(_, batch)| {
                batch
                    .requests
                    .iter()
                    .all(|r| self.state.core.store.request_applied(r.id))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            if let Some(batch) = self.outstanding.remove(&id) {
                self.regen_mux.disarm(KIND_REGEN, batch.seq);
                self.regen_agents.remove(&batch.seq);
            }
        }
    }
}

impl Process for MarpNode {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.arm_node_timers(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Bytes, ctx: &mut dyn Context) {
        match marp_wire::from_bytes::<NodeMsg>(&msg) {
            Ok(node_msg) => self.handle_node_msg(from, node_msg, ctx),
            Err(_) => ctx.trace(TraceEvent::Custom {
                kind: "undecodable-message",
                a: u64::from(from),
                b: msg.len() as u64,
            }),
        }
    }

    fn on_timer(&mut self, timer: TimerId, tag: u64, ctx: &mut dyn Context) {
        if self.runtime.handle_timer(timer, &mut self.state, ctx) {
            return;
        }
        if self.read_runtime.handle_timer(timer, &mut self.state, ctx) {
            return;
        }
        if let Some((KIND_REGEN, seq)) = self.regen_mux.fired(tag) {
            self.regen_deadline(seq, ctx);
            return;
        }
        match tag {
            TAG_BATCH_TICK => {
                if let Some(batch) = self.batcher.take_if_due(ctx.now()) {
                    self.dispatch_agent(batch, ctx);
                }
                ctx.set_timer(self.batcher.max_wait(), TAG_BATCH_TICK);
            }
            TAG_MAINTENANCE => {
                self.maintenance(ctx);
                ctx.set_timer(self.cfg.maintenance_interval, TAG_MAINTENANCE);
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut dyn Context) {
        self.state.on_recover();
        self.runtime.clear_volatile();
        self.read_runtime.clear_volatile();
        // The dispatch registry is volatile: regeneration timers from
        // the pre-crash life can never fire (the crash bumped the node
        // epoch), and in-flight client requests are re-driven by the
        // clients' own retries.
        self.outstanding.clear();
        self.regen_mux.clear();
        self.regen_agents.clear();
        self.arm_node_timers(ctx);
        let peer = (self.me() + 1) % self.cfg.n_servers as NodeId;
        if peer != self.me() {
            self.state.core.pull_from(peer, ctx);
        }
    }

    impl_as_any!();
}
