//! Server-side information sharing boards.
//!
//! Paper §3.3: "Mobile agents can exchange their locking information by
//! leaving the information at the servers they visited. This information
//! may be used by a mobile agent to determine which replicated server to
//! visit next." A [`GossipBoard`] is that shared blackboard: visiting
//! agents deposit their Locking Table and pick up what earlier visitors
//! left, so information spreads without extra messages. Disabling the
//! board is ablation experiment E10.

use crate::lt::LockingTable;
use marp_replica::LlSnapshot;
use marp_sim::NodeId;

/// A server's blackboard of LL snapshots left behind by visiting agents.
#[derive(Debug, Clone, Default)]
pub struct GossipBoard {
    table: LockingTable,
}

impl GossipBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an agent's Locking Table (keeps the freshest snapshot per
    /// server).
    pub fn deposit(&mut self, lt: &LockingTable) {
        self.table.merge_table(lt);
    }

    /// Deposit one snapshot directly (servers post their own LL).
    pub fn post(&mut self, server: NodeId, snapshot: LlSnapshot) {
        self.table.merge(server, snapshot);
    }

    /// The accumulated knowledge, for a visiting agent to merge.
    pub fn contents(&self) -> &LockingTable {
        &self.table
    }

    /// Number of servers the board has information about.
    pub fn known_servers(&self) -> usize {
        self.table.known_servers()
    }

    /// Reset (volatile across crashes).
    pub fn clear(&mut self) {
        self.table = LockingTable::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_agent::AgentId;
    use marp_sim::SimTime;

    fn snap(ms: u64, agents: &[AgentId]) -> LlSnapshot {
        LlSnapshot {
            version: ms,
            taken_at: SimTime::from_millis(ms),
            queue: agents.to_vec(),
        }
    }

    #[test]
    fn deposit_and_pick_up() {
        let a = AgentId::new(1, SimTime::ZERO, 0);
        let mut board = GossipBoard::new();
        let mut lt = LockingTable::new();
        lt.merge(2, snap(5, &[a]));
        board.deposit(&lt);
        assert_eq!(board.known_servers(), 1);
        assert_eq!(board.contents().snapshot(2).unwrap().top(), Some(a));
    }

    #[test]
    fn board_keeps_freshest() {
        let a = AgentId::new(1, SimTime::ZERO, 0);
        let b = AgentId::new(2, SimTime::ZERO, 0);
        let mut board = GossipBoard::new();
        board.post(0, snap(5, &[a]));
        board.post(0, snap(3, &[b]));
        assert_eq!(board.contents().snapshot(0).unwrap().top(), Some(a));
        board.post(0, snap(7, &[b]));
        assert_eq!(board.contents().snapshot(0).unwrap().top(), Some(b));
    }

    #[test]
    fn clear_empties_board() {
        let mut board = GossipBoard::new();
        board.post(0, snap(1, &[]));
        board.clear();
        assert_eq!(board.known_servers(), 0);
    }
}
