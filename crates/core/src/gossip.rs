//! Server-side information sharing boards.
//!
//! Paper §3.3: "Mobile agents can exchange their locking information by
//! leaving the information at the servers they visited. This information
//! may be used by a mobile agent to determine which replicated server to
//! visit next." A [`GossipBoard`] is that shared blackboard: visiting
//! agents deposit their Locking Table and pick up what earlier visitors
//! left, so information spreads without extra messages. Disabling the
//! board is ablation experiment E10.
//!
//! With the keyed lock table the board keeps one accumulated
//! [`LockingTable`] per object key: lock queues of different keys are
//! unrelated, so agents only pick up (and deposit) knowledge about
//! their own key.

use crate::lt::LockingTable;
use marp_replica::LlSnapshot;
use marp_sim::NodeId;
use std::collections::BTreeMap;

/// A server's blackboard of LL snapshots left behind by visiting
/// agents, partitioned by object key.
#[derive(Debug, Clone, Default)]
pub struct GossipBoard {
    tables: BTreeMap<u64, LockingTable>,
}

impl GossipBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an agent's Locking Table for its key (keeps the freshest
    /// snapshot per server).
    pub fn deposit(&mut self, key: u64, lt: &LockingTable) {
        self.tables.entry(key).or_default().merge_table(lt);
    }

    /// Deposit one snapshot directly (servers post their own per-key
    /// LL).
    pub fn post(&mut self, key: u64, server: NodeId, snapshot: LlSnapshot) {
        self.tables.entry(key).or_default().merge(server, snapshot);
    }

    /// The accumulated knowledge about `key`, for a visiting agent to
    /// merge, if any visitor left some.
    pub fn contents(&self, key: u64) -> Option<&LockingTable> {
        self.tables.get(&key)
    }

    /// Number of servers the board has information about for `key`.
    pub fn known_servers(&self, key: u64) -> usize {
        self.tables.get(&key).map_or(0, LockingTable::known_servers)
    }

    /// Keys any visitor has left information about.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.tables.keys().copied()
    }

    /// Reset (volatile across crashes).
    pub fn clear(&mut self) {
        self.tables.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marp_agent::AgentId;
    use marp_sim::SimTime;

    fn snap(ms: u64, agents: &[AgentId]) -> LlSnapshot {
        LlSnapshot {
            version: ms,
            taken_at: SimTime::from_millis(ms),
            queue: agents.to_vec(),
        }
    }

    #[test]
    fn deposit_and_pick_up() {
        let a = AgentId::new(1, SimTime::ZERO, 0);
        let mut board = GossipBoard::new();
        let mut lt = LockingTable::new();
        lt.merge(2, snap(5, &[a]));
        board.deposit(0, &lt);
        assert_eq!(board.known_servers(0), 1);
        assert_eq!(
            board.contents(0).unwrap().snapshot(2).unwrap().top(),
            Some(a)
        );
    }

    #[test]
    fn board_keeps_freshest() {
        let a = AgentId::new(1, SimTime::ZERO, 0);
        let b = AgentId::new(2, SimTime::ZERO, 0);
        let mut board = GossipBoard::new();
        board.post(0, 0, snap(5, &[a]));
        board.post(0, 0, snap(3, &[b]));
        assert_eq!(
            board.contents(0).unwrap().snapshot(0).unwrap().top(),
            Some(a)
        );
        board.post(0, 0, snap(7, &[b]));
        assert_eq!(
            board.contents(0).unwrap().snapshot(0).unwrap().top(),
            Some(b)
        );
    }

    #[test]
    fn keys_are_partitioned() {
        let a = AgentId::new(1, SimTime::ZERO, 0);
        let mut board = GossipBoard::new();
        board.post(7, 0, snap(5, &[a]));
        assert_eq!(board.known_servers(7), 1);
        assert_eq!(board.known_servers(8), 0);
        assert!(board.contents(8).is_none());
    }

    #[test]
    fn clear_empties_board() {
        let mut board = GossipBoard::new();
        board.post(0, 0, snap(1, &[]));
        board.clear();
        assert_eq!(board.known_servers(0), 0);
    }
}
