//! Property proofs for delta-encoded Locking Table migration.
//!
//! A migrating agent prunes its LT against the destination's advertised
//! knowledge horizon before serializing (`LockingTable::prune_covered_by`)
//! and unconditionally drops the destination's own entry
//! (`LockingTable::drop_server`), relying on the destination to re-supply
//! everything pruned. These tests prove the two soundness obligations:
//!
//! 1. **Delta-merge ≡ full-merge**: merging the pruned table into the
//!    receiver yields the same protocol-relevant state (version + queue
//!    per server) as merging the full table.
//! 2. **Own-entry drop is free**: when the destination re-merges a
//!    snapshot of its own LL that is at least as new as anything the
//!    agent carried (guaranteed by LL version monotonicity), dropping
//!    the carried entry changes nothing.
//!
//! Snapshots are generated under the invariant the protocol maintains:
//! a server's LL version uniquely determines its queue content (the
//! version bumps on every queue mutation), while `taken_at` may advance
//! independently (lease refreshes re-stamp without re-versioning).

use marp_agent::AgentId;
use marp_core::lt::{horizon_for_key, pack_horizon_slot, unpack_horizon_slot, LockingTable};
use marp_replica::LlSnapshot;
use marp_sim::{NodeId, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SERVERS: NodeId = 5;

/// The keys of the multi-key properties. Key 0 is deliberately
/// included: its packed horizon slots are numerically bare server ids
/// (the single-key byte-identity invariant).
const KEYS: [u64; 3] = [0, 1, 7];

/// The queue a server's LL held at a given version — deterministic, so
/// equal versions always mean equal queues (the protocol's invariant).
fn queue_at(server: NodeId, version: u64) -> Vec<AgentId> {
    let len = ((version + u64::from(server)) % 4) as usize;
    (0..len)
        .map(|i| {
            let home = ((version + i as u64 * 3 + u64::from(server) * 7) % 8) as u16;
            AgentId::new(home, SimTime::from_millis(home as u64), 0)
        })
        .collect()
}

/// A snapshot of `server` at `version`, re-stamped `refresh` ms after the
/// version was minted (models lease refreshes: same content, later
/// `taken_at`).
fn snap_at(server: NodeId, version: u64, refresh: u64) -> LlSnapshot {
    LlSnapshot {
        version,
        taken_at: SimTime::from_millis(version * 1_000 + refresh),
        queue: queue_at(server, version),
    }
}

/// Per-server: does each side hold a snapshot, and at which point of the
/// server's history? `None` = no entry.
fn arb_entry() -> impl Strategy<Value = Option<(u64, u64)>> {
    proptest::option::of((0u64..12, 0u64..1_000))
}

fn arb_table_pair() -> impl Strategy<Value = (LockingTable, LockingTable)> {
    proptest::collection::vec((arb_entry(), arb_entry()), SERVERS as usize).prop_map(|entries| {
        let mut sender = LockingTable::new();
        let mut receiver = LockingTable::new();
        for (server, (s, r)) in entries.into_iter().enumerate() {
            let server = server as NodeId;
            if let Some((version, refresh)) = s {
                sender.merge(server, snap_at(server, version, refresh));
            }
            if let Some((version, refresh)) = r {
                receiver.merge(server, snap_at(server, version, refresh));
            }
        }
        (sender, receiver)
    })
}

/// A table pair per object key — each key's Locking Table evolves
/// independently (agents are key-uniform), but hosts advertise ONE
/// packed horizon over all keys.
fn arb_keyed_table_pairs() -> impl Strategy<Value = Vec<(u64, LockingTable, LockingTable)>> {
    proptest::collection::vec(arb_table_pair(), KEYS.len()).prop_map(|pairs| {
        KEYS.iter()
            .copied()
            .zip(pairs)
            .map(|(key, (s, r))| (key, s, r))
            .collect()
    })
}

/// A host's packed knowledge horizon over every key it has chains for:
/// slot `key << 16 | server` → snapshot version (what
/// `HostState::horizon()` broadcasts in `MigrateAck`).
fn packed_horizon(tables: &[(u64, LockingTable, LockingTable)]) -> BTreeMap<u64, u64> {
    let mut packed = BTreeMap::new();
    for (key, _, receiver) in tables {
        for (server, version) in receiver.horizon() {
            packed.insert(pack_horizon_slot(*key, server), version);
        }
    }
    packed
}

/// The protocol-relevant projection of a table: version and queue per
/// server. `taken_at` is deliberately excluded — equal-version snapshots
/// differ only by lease-refresh timestamps, which no decision reads.
fn relevant(lt: &LockingTable) -> Vec<(NodeId, u64, Vec<AgentId>)> {
    lt.iter()
        .map(|(server, snap)| (server, snap.version, snap.queue.clone()))
        .collect()
}

proptest! {
    /// Obligation 1: the receiver ends in the same state whether the
    /// sender shipped its full table or only the delta above the
    /// receiver's horizon.
    #[test]
    fn delta_merge_equals_full_merge((sender, receiver) in arb_table_pair()) {
        let horizon = receiver.horizon();

        let mut full = receiver.clone();
        full.merge_table(&sender);

        let mut delta_table = sender.clone();
        delta_table.prune_covered_by(&horizon);
        let mut delta = receiver.clone();
        delta.merge_table(&delta_table);

        prop_assert_eq!(relevant(&delta), relevant(&full));
    }

    /// Obligation 2: dropping the destination's own entry before
    /// migrating is free, because the destination re-merges a snapshot
    /// of its live LL that is at least as new (versions are monotonic,
    /// and a snapshot taken on arrival is stamped no earlier than any
    /// older snapshot of the same LL).
    #[test]
    fn own_entry_drop_is_recovered_on_arrival(
        (sender, _) in arb_table_pair(),
        dest in 0..SERVERS,
        newer in 0u64..6,
        refresh in 0u64..1_000,
    ) {
        // The destination's live LL is `newer` versions ahead of
        // whatever the agent carries for it (0 = identical version, with
        // a re-stamp at least as late).
        let carried = sender.snapshot(dest).cloned();
        let base = carried.as_ref().map_or(0, |s| s.version);
        let live_refresh = match &carried {
            Some(s) if newer == 0 => (s.taken_at.as_millis() - s.version * 1_000) + refresh,
            _ => refresh,
        };
        let live = snap_at(dest, base + newer, live_refresh);

        let mut kept = sender.clone();
        kept.merge(dest, live.clone());

        let mut dropped = sender.clone();
        dropped.drop_server(dest);
        dropped.merge(dest, live);

        prop_assert_eq!(relevant(&dropped), relevant(&kept));
    }

    /// Pruning never invents entries and never keeps an entry the
    /// horizon covers.
    #[test]
    fn prune_keeps_exactly_the_uncovered((sender, receiver) in arb_table_pair()) {
        let horizon = receiver.horizon();
        let mut pruned = sender.clone();
        pruned.prune_covered_by(&horizon);
        for (server, snap) in sender.iter() {
            let kept = pruned.snapshot(server).is_some();
            let covered = horizon.get(&server).is_some_and(|&v| snap.version <= v);
            prop_assert_eq!(kept, !covered);
        }
        prop_assert!(pruned.known_servers() <= sender.known_servers());
    }

    /// Versioned snapshots survive the wire byte-for-byte, and so does a
    /// whole table (exercises the `encoded_len` hints via the
    /// debug-assert in `to_bytes`).
    #[test]
    fn versioned_snapshot_roundtrips(
        server in 0..SERVERS,
        version in 0u64..1_000_000,
        refresh in 0u64..1_000,
    ) {
        let snap = snap_at(server, version, refresh);
        let bytes = marp_wire::to_bytes(&snap);
        prop_assert_eq!(marp_wire::from_bytes::<LlSnapshot>(&bytes).unwrap(), snap);
    }

    #[test]
    fn versioned_table_roundtrips((sender, _) in arb_table_pair()) {
        let bytes = marp_wire::to_bytes(&sender);
        prop_assert_eq!(marp_wire::from_bytes::<LockingTable>(&bytes).unwrap(), sender);
    }

    /// Multi-key obligation 1: each key's agent prunes against the
    /// per-key projection of the host's single packed horizon, and for
    /// every key the delta merge matches the full merge — other keys'
    /// slots never cover (and so never wrongly prune) this key's
    /// entries.
    #[test]
    fn per_key_delta_merge_equals_full_merge(tables in arb_keyed_table_pairs()) {
        let packed = packed_horizon(&tables);
        for (key, sender, receiver) in &tables {
            let horizon = horizon_for_key(&packed, *key);

            let mut full = receiver.clone();
            full.merge_table(sender);

            let mut delta_table = sender.clone();
            delta_table.prune_covered_by(&horizon);
            let mut delta = receiver.clone();
            delta.merge_table(&delta_table);

            prop_assert_eq!(
                relevant(&delta),
                relevant(&full),
                "key {} diverged under packed-horizon pruning",
                key
            );
        }
    }

    /// The packed projection is exact: extracting one key out of the
    /// packed map returns precisely that key's per-server horizon.
    #[test]
    fn packed_horizon_projects_exactly(tables in arb_keyed_table_pairs()) {
        let packed = packed_horizon(&tables);
        for (key, _, receiver) in &tables {
            prop_assert_eq!(horizon_for_key(&packed, *key), receiver.horizon());
        }
        // A key nobody has chains for projects to an empty horizon.
        prop_assert!(horizon_for_key(&packed, 999).is_empty());
    }

    /// Horizon slots round-trip, and key-0 slots collapse to the bare
    /// server id — the invariant that keeps single-key wire traffic
    /// byte-identical to the pre-keyspace encoding.
    #[test]
    fn horizon_slot_roundtrips(
        key in 0u64..=marp_core::lt::MAX_HORIZON_KEY,
        server in proptest::prelude::any::<u16>(),
    ) {
        let slot = pack_horizon_slot(key, server);
        prop_assert_eq!(unpack_horizon_slot(slot), (key, server));
        if key == 0 {
            prop_assert_eq!(slot, u64::from(server));
        }
        prop_assert_eq!(pack_horizon_slot(0, server), u64::from(server));
    }
}
