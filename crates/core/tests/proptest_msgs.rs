//! Property tests for the MARP message space: round-trips for every
//! message shape and decoder robustness against arbitrary bytes (a
//! malformed packet must never panic a replica).

use bytes::Bytes;
use marp_agent::{AgentEnvelope, AgentId};
use marp_core::{AgentReply, CommitMsg, NodeMsg, UpdateAgent, UpdateMsg};
use marp_replica::{ClientRequest, CommitRecord, Operation, SyncMsg, WriteRequest};
use marp_sim::SimTime;
use proptest::prelude::*;

fn arb_agent_id() -> impl Strategy<Value = AgentId> {
    (any::<u16>(), 0u64..1_000_000, any::<u32>())
        .prop_map(|(home, ms, seq)| AgentId::new(home, SimTime::from_millis(ms), seq))
}

fn arb_write_request() -> impl Strategy<Value = WriteRequest> {
    (
        any::<u64>(),
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        0u64..1_000_000,
    )
        .prop_map(|(id, client, key, value, ms)| WriteRequest {
            id,
            client,
            key,
            value,
            arrived: SimTime::from_millis(ms),
        })
}

fn arb_commit_record() -> impl Strategy<Value = CommitRecord> {
    (
        1u64..1_000_000,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u64..1_000_000,
    )
        .prop_map(|(version, key, value, agent, request, ms)| CommitRecord {
            version,
            key,
            value,
            agent,
            request,
            committed_at: SimTime::from_millis(ms),
        })
}

fn arb_node_msg() -> impl Strategy<Value = NodeMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(id, key)| NodeMsg::Client(ClientRequest {
            id,
            op: Operation::Read { key },
        })),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(id, key, value)| NodeMsg::Client(
            ClientRequest {
                id,
                op: Operation::Write { key, value },
            }
        )),
        (
            arb_agent_id(),
            any::<u32>(),
            proptest::collection::btree_map(any::<u64>(), any::<u64>(), 0..4),
        )
            .prop_map(
                |(agent, hop, horizon)| NodeMsg::Agent(AgentEnvelope::MigrateAck {
                    agent,
                    hop,
                    horizon,
                })
            ),
        (
            arb_agent_id(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            proptest::collection::vec(arb_write_request(), 0..4),
            proptest::option::of(proptest::collection::vec(arb_agent_id(), 0..4)),
        )
            .prop_map(
                |(agent, attempt, incarnation, reply_to, requests, tie_certificate)| {
                    NodeMsg::Update(UpdateMsg {
                        agent,
                        attempt,
                        incarnation,
                        reply_to,
                        requests,
                        tie_certificate,
                    })
                }
            ),
        (
            arb_agent_id(),
            proptest::collection::vec(arb_commit_record(), 0..4)
        )
            .prop_map(|(agent, records)| NodeMsg::Commit(CommitMsg { agent, records })),
        arb_agent_id().prop_map(|agent| NodeMsg::Release { agent }),
        (arb_agent_id(), any::<u16>())
            .prop_map(|(agent, reply_to)| NodeMsg::LlQuery { agent, reply_to }),
        (arb_agent_id(), 1u64..1_000_000, any::<u16>()).prop_map(|(agent, key, reply_to)| {
            NodeMsg::LlQueryKeyed {
                agent,
                key,
                reply_to,
            }
        }),
        any::<u64>().prop_map(|v| NodeMsg::Sync(SyncMsg::Pull { from_version: v })),
    ]
}

proptest! {
    #[test]
    fn node_msgs_roundtrip(msg in arb_node_msg()) {
        let bytes = marp_wire::to_bytes(&msg);
        let back: NodeMsg = marp_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Garbage never panics any decoder a replica exposes to the
    /// network.
    #[test]
    fn garbage_never_panics_decoders(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = Bytes::from(raw);
        let _ = marp_wire::from_bytes::<NodeMsg>(&bytes);
        let _ = marp_wire::from_bytes::<AgentReply>(&bytes);
        let _ = marp_wire::from_bytes::<UpdateAgent>(&bytes);
        let _ = marp_wire::from_bytes::<AgentEnvelope>(&bytes);
    }

    /// Truncating a valid message never panics either (it errors).
    #[test]
    fn truncation_never_panics(msg in arb_node_msg(), keep in 0usize..64) {
        let bytes = marp_wire::to_bytes(&msg);
        let truncated = bytes.slice(0..keep.min(bytes.len()));
        let _ = marp_wire::from_bytes::<NodeMsg>(&truncated);
    }

    /// Bit-flipping a valid message never panics (it errors or decodes
    /// to some other valid message — both acceptable; replicas treat
    /// content defensively).
    #[test]
    fn bitflips_never_panic(msg in arb_node_msg(), pos in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let bytes = marp_wire::to_bytes(&msg);
        if bytes.is_empty() {
            return Ok(());
        }
        let mut raw = bytes.to_vec();
        let idx = pos.index(raw.len());
        raw[idx] ^= 1 << bit;
        let _ = marp_wire::from_bytes::<NodeMsg>(&Bytes::from(raw));
    }
}
