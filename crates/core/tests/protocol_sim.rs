//! End-to-end protocol tests: MARP clusters under the discrete-event
//! simulator, checking the paper's claimed properties on every run.

use marp_core::{build_cluster, wrap_client_request, MarpConfig, MarpNode};
use marp_net::{FaultPlan, LinkModel, SimTransport, Topology};
use marp_replica::{ClientProcess, Operation, ScriptedSource};
use marp_sim::{NodeId, SimRng, SimTime, Simulation, TraceEvent, TraceLevel};
use std::collections::BTreeMap;
use std::time::Duration;

fn lan_sim(n_servers: usize, n_clients: usize, seed: u64) -> (Simulation, Topology) {
    let topo = Topology::uniform_lan(n_servers + n_clients, Duration::from_millis(2));
    let transport = SimTransport::new(topo.clone(), LinkModel::ideal(), SimRng::from_seed(seed));
    (
        Simulation::new(Box::new(transport), TraceLevel::Protocol),
        topo,
    )
}

fn add_client(sim: &mut Simulation, server: NodeId, script: Vec<(Duration, Operation)>) -> NodeId {
    sim.add_process(Box::new(ClientProcess::new(
        server,
        Box::new(ScriptedSource::new(script)),
        wrap_client_request,
    )))
}

/// A server's applied commit history, one dense log of
/// `(version, key, value)` per object key (MARP stores run the
/// per-key chain discipline).
type CommitLog = BTreeMap<u64, Vec<(u64, u64, u64)>>;

fn commit_log_of(sim: &Simulation, server: NodeId) -> CommitLog {
    let node = sim.process::<MarpNode>(server).unwrap();
    let store = &node.state().core.store;
    store
        .chain_versions()
        .keys()
        .map(|&chain| {
            (
                chain,
                store
                    .log_suffix_for(chain, 0)
                    .iter()
                    .map(|r| (r.version, r.key, r.value))
                    .collect(),
            )
        })
        .collect()
}

fn total_commits(log: &CommitLog) -> usize {
    log.values().map(Vec::len).sum()
}

/// All servers applied the same commits in the same order *per key*
/// (the paper's order-preservation property, held independently on
/// every key's chain), modulo a shorter prefix on servers that are
/// still catching up.
fn assert_consistent(sim: &Simulation, n: usize) {
    let logs: Vec<CommitLog> = (0..n as NodeId).map(|s| commit_log_of(sim, s)).collect();
    let keys: std::collections::BTreeSet<u64> =
        logs.iter().flat_map(|l| l.keys().copied()).collect();
    for key in keys {
        let empty = Vec::new();
        let chains: Vec<&Vec<(u64, u64, u64)>> =
            logs.iter().map(|l| l.get(&key).unwrap_or(&empty)).collect();
        let longest = chains.iter().map(|c| c.len()).max().unwrap_or(0);
        let reference = chains
            .iter()
            .find(|c| c.len() == longest)
            .expect("at least one chain");
        for (server, chain) in chains.iter().enumerate() {
            assert_eq!(
                chain.as_slice(),
                &reference[..chain.len()],
                "server {server} diverges from the common prefix on key {key}"
            );
        }
    }
}

#[test]
fn single_write_reaches_all_replicas() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 1, 1);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    add_client(
        &mut sim,
        0,
        vec![(
            Duration::from_millis(1),
            Operation::Write { key: 7, value: 70 },
        )],
    );
    sim.run_until(SimTime::from_secs(2));

    for server in 0..n as NodeId {
        let node = sim.process::<MarpNode>(server).unwrap();
        assert_eq!(
            node.state().core.store.get(7).map(|s| s.value),
            Some(70),
            "server {server} missing the write"
        );
        assert_eq!(node.resident_agents(), 0);
        assert_eq!(node.outstanding_batches(), 0);
    }
    assert_eq!(
        sim.trace()
            .count(|e| matches!(e, TraceEvent::AgentDisposed { .. })),
        1
    );
    assert_consistent(&sim, n);
}

#[test]
fn client_gets_write_done_and_fresh_read() {
    let n = 3;
    let (mut sim, topo) = lan_sim(n, 1, 2);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    let client = add_client(
        &mut sim,
        1,
        vec![
            (
                Duration::from_millis(1),
                Operation::Write { key: 3, value: 30 },
            ),
            (Duration::from_millis(200), Operation::Read { key: 3 }),
        ],
    );
    sim.run_until(SimTime::from_secs(2));
    let client_proc = sim.process::<ClientProcess>(client).unwrap();
    assert_eq!(client_proc.stats.write_latencies.len(), 1);
    assert_eq!(client_proc.stats.read_latencies.len(), 1);
    // The read, issued 200 ms after the write, observes it.
    assert_eq!(client_proc.stats.read_versions, vec![1]);
    // Local read over one 2 ms hop each way: far cheaper than the write.
    assert!(client_proc.stats.mean_read_ms().unwrap() < 6.0);
    assert!(client_proc.stats.mean_write_ms().unwrap() > client_proc.stats.mean_read_ms().unwrap());
}

#[test]
fn concurrent_writers_from_every_server_stay_consistent() {
    let n = 5;
    let writes_per_client = 6;
    let (mut sim, topo) = lan_sim(n, n, 3);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    for server in 0..n as NodeId {
        let script: Vec<(Duration, Operation)> = (0..writes_per_client)
            .map(|i| {
                (
                    Duration::from_millis(5),
                    Operation::Write {
                        key: u64::from(server),
                        value: u64::from(server) * 1000 + i,
                    },
                )
            })
            .collect();
        add_client(&mut sim, server, script);
    }
    sim.run_until(SimTime::from_secs(20));

    let total = n * writes_per_client as usize;
    let log0 = commit_log_of(&sim, 0);
    assert_eq!(total_commits(&log0), total, "all writes must commit");
    // Each key's chain is dense 1..=len — independent keys version
    // independently.
    assert_eq!(log0.len(), n, "one chain per key");
    for (key, chain) in &log0 {
        let versions: Vec<u64> = chain.iter().map(|&(v, _, _)| v).collect();
        assert_eq!(
            versions,
            (1..=chain.len() as u64).collect::<Vec<_>>(),
            "key {key} chain not dense"
        );
    }
    assert_consistent(&sim, n);

    // Every request completed exactly once.
    assert_eq!(
        sim.trace()
            .count(|e| matches!(e, TraceEvent::UpdateCompleted { .. })),
        total
    );
}

#[test]
fn theorem3_visit_bounds_hold() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, n, 4);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    for server in 0..n as NodeId {
        let script: Vec<(Duration, Operation)> = (0..4)
            .map(|i| {
                (
                    Duration::from_millis(10),
                    Operation::Write {
                        key: 1,
                        value: u64::from(server) * 100 + i,
                    },
                )
            })
            .collect();
        add_client(&mut sim, server, script);
    }
    sim.run_until(SimTime::from_secs(20));

    let min_visits = (n as u32).div_ceil(2);
    let mut grants = 0;
    for record in sim
        .trace()
        .filter(|e| matches!(e, TraceEvent::LockGranted { .. }))
    {
        let TraceEvent::LockGranted { visits, .. } = record.event else {
            unreachable!()
        };
        grants += 1;
        assert!(
            (min_visits..=n as u32).contains(&visits),
            "visits {visits} outside Theorem 3 bounds [{min_visits}, {n}]"
        );
    }
    assert!(grants >= n as u32 * 4, "every batch should win eventually");
    assert_consistent(&sim, n);
}

#[test]
fn works_with_three_servers_and_jitter() {
    let n = 3;
    let topo = Topology::uniform_lan(n + 2, Duration::from_millis(2));
    let transport = SimTransport::new(topo.clone(), LinkModel::lan_1990s(), SimRng::from_seed(5));
    let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    for (client_idx, server) in [(0u16, 0u16), (1, 1)] {
        let _ = client_idx;
        let script: Vec<(Duration, Operation)> = (0..5)
            .map(|i| {
                (
                    Duration::from_millis(8),
                    Operation::Write {
                        key: u64::from(server),
                        value: i,
                    },
                )
            })
            .collect();
        add_client(&mut sim, server, script);
    }
    sim.run_until(SimTime::from_secs(20));
    assert_eq!(total_commits(&commit_log_of(&sim, 0)), 10);
    assert_consistent(&sim, n);
}

#[test]
fn crashed_replica_catches_up_after_recovery() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 1, 6);
    let cfg = MarpConfig::new(n);
    build_cluster(&mut sim, &cfg, &topo);
    // Server 4 is down from 5 ms to 3 s; writes flow meanwhile.
    let plan = FaultPlan::new(n).crash(4, SimTime::from_millis(5), Duration::from_secs(3));
    plan.schedule_controls(&mut sim);
    let script: Vec<(Duration, Operation)> = (0..8)
        .map(|i| {
            (
                Duration::from_millis(40),
                Operation::Write { key: 9, value: i },
            )
        })
        .collect();
    add_client(&mut sim, 0, script);
    sim.run_until(SimTime::from_secs(30));

    // All 8 writes committed despite the crash (majority alive).
    assert_eq!(total_commits(&commit_log_of(&sim, 0)), 8);
    // The recovered server pulled the history it missed.
    assert_eq!(
        total_commits(&commit_log_of(&sim, 4)),
        8,
        "server 4 should catch up via anti-entropy"
    );
    assert_consistent(&sim, n);
}

#[test]
fn update_is_majority_acked_before_commit() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 1, 7);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    add_client(
        &mut sim,
        2,
        vec![(
            Duration::from_millis(1),
            Operation::Write { key: 1, value: 1 },
        )],
    );
    sim.run_until(SimTime::from_secs(2));
    let positive_acks = sim
        .trace()
        .count(|e| matches!(e, TraceEvent::UpdateAcked { positive: true, .. }));
    assert!(
        positive_acks >= 3,
        "majority of acks required, saw {positive_acks}"
    );
    assert_eq!(
        sim.trace()
            .count(|e| matches!(e, TraceEvent::CommitApplied { .. })),
        n
    );
}

#[test]
fn deterministic_replay_bytes_identical() {
    let build = || {
        let n = 4;
        let (mut sim, topo) = lan_sim(n, 2, 11);
        build_cluster(&mut sim, &MarpConfig::new(n), &topo);
        add_client(
            &mut sim,
            0,
            vec![
                (
                    Duration::from_millis(1),
                    Operation::Write { key: 1, value: 1 },
                ),
                (
                    Duration::from_millis(3),
                    Operation::Write { key: 2, value: 2 },
                ),
            ],
        );
        add_client(
            &mut sim,
            1,
            vec![(
                Duration::from_millis(2),
                Operation::Write { key: 3, value: 3 },
            )],
        );
        sim.run_until(SimTime::from_secs(5));
        sim.into_trace()
    };
    let t1 = build();
    let t2 = build();
    assert_eq!(t1.records(), t2.records());
}

#[test]
fn single_server_degenerates_gracefully() {
    let n = 1;
    let (mut sim, topo) = lan_sim(n, 1, 8);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    add_client(
        &mut sim,
        0,
        vec![(
            Duration::from_millis(1),
            Operation::Write { key: 5, value: 55 },
        )],
    );
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(
        commit_log_of(&sim, 0),
        BTreeMap::from([(5, vec![(1, 5, 55)])])
    );
}

#[test]
fn gossip_off_still_converges() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 2, 9);
    let mut cfg = MarpConfig::new(n);
    cfg.gossip = false;
    build_cluster(&mut sim, &cfg, &topo);
    for server in 0..2u16 {
        let script: Vec<(Duration, Operation)> = (0..3)
            .map(|i| {
                (
                    Duration::from_millis(5),
                    Operation::Write { key: 4, value: i },
                )
            })
            .collect();
        add_client(&mut sim, server, script);
    }
    sim.run_until(SimTime::from_secs(20));
    assert_eq!(total_commits(&commit_log_of(&sim, 0)), 6);
    assert_consistent(&sim, n);
}

#[test]
fn batching_coalesces_requests_into_one_agent() {
    let n = 3;
    let (mut sim, topo) = lan_sim(n, 1, 10);
    let mut cfg = MarpConfig::new(n);
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait = Duration::from_millis(30);
    build_cluster(&mut sim, &cfg, &topo);
    // Same key throughout: agents are key-uniform, so a single-key
    // batch must coalesce into exactly one agent.
    let script: Vec<(Duration, Operation)> = (0..4)
        .map(|i| {
            (
                Duration::from_millis(1),
                Operation::Write { key: 7, value: i },
            )
        })
        .collect();
    add_client(&mut sim, 0, script);
    sim.run_until(SimTime::from_secs(5));

    // One agent carried all four writes.
    let dispatches: Vec<usize> = sim
        .trace()
        .filter(|e| matches!(e, TraceEvent::AgentDispatched { .. }))
        .map(|r| match r.event {
            TraceEvent::AgentDispatched { batch, .. } => batch,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(dispatches, vec![4]);
    assert_eq!(total_commits(&commit_log_of(&sim, 0)), 4);
    assert_consistent(&sim, n);
}

#[test]
fn fresh_read_consults_a_majority_and_sees_the_latest_value() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 1, 12);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    let client = add_client(
        &mut sim,
        2,
        vec![
            (
                Duration::from_millis(1),
                Operation::Write { key: 4, value: 44 },
            ),
            (Duration::from_millis(150), Operation::ReadFresh { key: 4 }),
        ],
    );
    sim.run_until(SimTime::from_secs(3));
    let proc = sim.process::<ClientProcess>(client).unwrap();
    assert_eq!(proc.stats.read_latencies.len(), 1);
    assert_eq!(proc.stats.read_versions, vec![1]);
    // The read agent visited a majority: its latency covers at least
    // ceil((n+1)/2) - 1 = 2 migrations beyond the local visit, so it is
    // strictly slower than a local read round trip (4 ms) but far
    // cheaper than a write.
    let read_ms = proc.stats.mean_read_ms().unwrap();
    assert!(read_ms > 4.0, "fresh read too fast to be quorum: {read_ms}");
    // No read agents left resident anywhere.
    for server in 0..n as NodeId {
        let node = sim.process::<MarpNode>(server).unwrap();
        assert_eq!(node.resident_read_agents(), 0);
    }
}

#[test]
fn fresh_read_is_rejected_when_majority_unreachable() {
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 1, 13);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    // Three of five servers down: majority reads impossible.
    for node in [1u16, 3, 4] {
        sim.schedule_control(
            SimTime::ZERO,
            marp_sim::Control::SetNodeUp { node, up: false },
        );
    }
    let client = add_client(
        &mut sim,
        0,
        vec![(Duration::from_millis(1), Operation::ReadFresh { key: 4 })],
    );
    sim.run_until(SimTime::from_secs(30));
    let proc = sim.process::<ClientProcess>(client).unwrap();
    assert_eq!(proc.stats.rejected, 1, "expected a refusal");
    assert_eq!(proc.stats.read_latencies.len(), 0);
}

#[test]
fn plain_reads_can_be_stale_but_fresh_reads_are_not() {
    // Write through server 0; immediately read key through server 4,
    // both plain and fresh, racing the commit propagation. The fresh
    // read must observe the committed value once the write completed.
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 2, 14);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    add_client(
        &mut sim,
        0,
        vec![(
            Duration::from_millis(1),
            Operation::Write { key: 9, value: 90 },
        )],
    );
    let reader = add_client(
        &mut sim,
        4,
        vec![(Duration::from_millis(300), Operation::ReadFresh { key: 9 })],
    );
    sim.run_until(SimTime::from_secs(3));
    let proc = sim.process::<ClientProcess>(reader).unwrap();
    assert_eq!(proc.stats.read_versions, vec![1]);
}

#[test]
fn winner_crash_between_update_and_commit_does_not_wedge_rivals() {
    // Client on server 0 writes; its agent wins and broadcasts UPDATE at
    // ~11 ms. Server 0 (hosting the winner) crashes at 12 ms — after
    // reservations were granted, before COMMIT. Rivals from server 1
    // must eventually commit: the dead winner's reservations expire
    // after `reserve_lease` and its LL entries after the lock lease.
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 2, 21);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    add_client(
        &mut sim,
        0,
        vec![(
            Duration::from_millis(1),
            Operation::Write { key: 1, value: 11 },
        )],
    );
    add_client(
        &mut sim,
        1,
        vec![(
            Duration::from_millis(30),
            Operation::Write { key: 2, value: 22 },
        )],
    );
    sim.schedule_control(
        SimTime::from_millis(12),
        marp_sim::Control::SetNodeUp { node: 0, up: false },
    );
    sim.run_until(SimTime::from_secs(120));

    // The rival's write committed on the surviving majority.
    let node1 = sim.process::<MarpNode>(1).unwrap();
    assert_eq!(
        node1.state().core.store.get(2).map(|s| s.value),
        Some(22),
        "rival write never committed"
    );
    marp_metrics::audit_keyed(sim.trace(), n).assert_ok();
}

fn queued_behind_events(sim: &Simulation) -> usize {
    sim.trace().count(|e| {
        matches!(
            e,
            TraceEvent::Custom {
                kind: "lock-queued-behind",
                ..
            }
        )
    })
}

#[test]
fn mixed_key_batch_fans_out_into_per_key_agents() {
    // Four writes to four keys arriving inside one batching window:
    // the batcher coalesces them, but dispatch splits the ripe batch
    // into one key-uniform agent per key.
    let n = 3;
    let (mut sim, topo) = lan_sim(n, 1, 15);
    let mut cfg = MarpConfig::new(n);
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait = Duration::from_millis(30);
    build_cluster(&mut sim, &cfg, &topo);
    let script: Vec<(Duration, Operation)> = (0..4)
        .map(|i| {
            (
                Duration::from_millis(1),
                Operation::Write { key: i, value: i },
            )
        })
        .collect();
    add_client(&mut sim, 0, script);
    sim.run_until(SimTime::from_secs(5));

    let dispatches: Vec<usize> = sim
        .trace()
        .filter(|e| matches!(e, TraceEvent::AgentDispatched { .. }))
        .map(|r| match r.event {
            TraceEvent::AgentDispatched { batch, .. } => batch,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(dispatches, vec![1, 1, 1, 1], "one agent per key");
    let log = commit_log_of(&sim, 0);
    assert_eq!(log.len(), 4, "one chain per key");
    assert_eq!(total_commits(&log), 4);
    assert_consistent(&sim, n);
    marp_metrics::audit_keyed(sim.trace(), n).assert_ok();
}

#[test]
fn disjoint_key_writers_never_wait_on_each_others_locks() {
    // Two writers on different servers write two different keys
    // concurrently (spaced so each writer's own agents never overlap —
    // any queuing would be *between* the writers). Locking Lists are
    // per key, so neither agent must ever find the other queued ahead
    // of it: zero lock waits.
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 2, 16);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    for (server, key) in [(0u16, 1u64), (1, 2)] {
        let script: Vec<(Duration, Operation)> = (0..6)
            .map(|i| {
                (
                    Duration::from_millis(100),
                    Operation::Write { key, value: i },
                )
            })
            .collect();
        add_client(&mut sim, server, script);
    }
    sim.run_until(SimTime::from_secs(20));

    assert_eq!(total_commits(&commit_log_of(&sim, 0)), 12);
    assert_eq!(
        queued_behind_events(&sim),
        0,
        "disjoint-key agents queued behind each other"
    );
    assert_consistent(&sim, n);
    marp_metrics::audit_keyed(sim.trace(), n).assert_ok();
}

#[test]
fn same_key_writers_do_queue_behind_each_other() {
    // Control for the disjoint-key regression: the same workload on a
    // single shared key must exhibit lock waits — otherwise the
    // `lock-queued-behind` probe itself is broken.
    let n = 5;
    let (mut sim, topo) = lan_sim(n, 2, 16);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    for server in [0u16, 1] {
        let script: Vec<(Duration, Operation)> = (0..6)
            .map(|i| {
                (
                    Duration::from_millis(100),
                    Operation::Write { key: 1, value: i },
                )
            })
            .collect();
        add_client(&mut sim, server, script);
    }
    sim.run_until(SimTime::from_secs(20));

    assert_eq!(total_commits(&commit_log_of(&sim, 0)), 12);
    assert!(
        queued_behind_events(&sim) > 0,
        "contending same-key agents never queued — probe broken?"
    );
    assert_consistent(&sim, n);
    marp_metrics::audit_keyed(sim.trace(), n).assert_ok();
}
