//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `bytes` API it actually uses: a cheaply
//! cloneable immutable buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits. Multi-byte
//! integer accessors use big-endian byte order, matching upstream.
//!
//! Semantics intentionally preserved from upstream:
//! * `Bytes::clone` is O(1) (shared `Arc<[u8]>` plus a view window).
//! * `advance`/`copy_to_bytes`/`slice` never copy the underlying storage.
//! * `BytesMut::freeze` transfers the accumulated bytes into a `Bytes`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared Debug body for the two buffer types: `b"..."` literal style,
/// like upstream `bytes`.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &byte in self.as_ref() {
                if byte.is_ascii_graphic() || byte == b' ' {
                    write!(f, "{}", byte as char)?;
                } else {
                    write!(f, "\\x{byte:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Backing storage for [`Bytes`]: either reference-counted heap bytes or
/// a borrowed `'static` slice. Both clone in O(1). Heap storage keeps
/// the originating `Vec` alive instead of re-packing it into `Arc<[u8]>`,
/// so `BytesMut::freeze` transfers ownership without copying — encoding
/// a message costs exactly one buffer allocation.
#[derive(Clone)]
enum Storage {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Default for Storage {
    fn default() -> Self {
        Storage::Static(&[])
    }
}

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Storage,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice without copying, matching upstream semantics.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Storage::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of `self` over `range` (zero-copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them (zero-copy).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Storage::Shared(data) => &data[self.start..self.end],
            Storage::Static(data) => &data[self.start..self.end],
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let end = vec.len();
        Bytes {
            data: Storage::Shared(Arc::new(vec)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read cursor over a byte source. All multi-byte reads are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The current unread contiguous chunk.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let byte = self.chunk()[0];
        self.advance(1);
        byte
    }

    /// Consume and return a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Consume and return a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Consume and return a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume `len` bytes and return them as a [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy specialization: hand out a window over the shared
        // storage instead of copying.
        self.split_to(len)
    }
}

/// Write cursor over a growable byte sink. All multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_views() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(7);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 12);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(bytes, b"xyz"[..]);
    }

    #[test]
    fn clone_is_view_sharing() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        b.advance(2);
        assert_eq!(a.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(b.as_slice(), &[3, 4]);
        assert_eq!(a.slice(1..3).as_slice(), &[2, 3]);
    }

    #[test]
    fn copy_to_bytes_is_zero_copy_window() {
        let mut a = Bytes::from(vec![9, 8, 7]);
        let head = Buf::copy_to_bytes(&mut a, 2);
        assert_eq!(head.as_slice(), &[9, 8]);
        assert_eq!(a.as_slice(), &[7]);
    }

    #[test]
    fn from_static_borrows_without_copying() {
        static RAW: [u8; 4] = [1, 2, 3, 4];
        let b = Bytes::from_static(&RAW);
        assert_eq!(b.as_slice().as_ptr(), RAW.as_ptr());
        // Views over the static storage stay zero-copy too.
        let tail = b.slice(2..);
        assert_eq!(tail.as_slice().as_ptr(), RAW[2..].as_ptr());
        assert_eq!(tail.as_slice(), &[3, 4]);
    }

    #[test]
    fn freeze_transfers_without_copying() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(&[1, 2, 3, 4]);
        let ptr = buf.as_ref().as_ptr();
        let frozen = buf.freeze();
        assert_eq!(frozen.as_slice().as_ptr(), ptr);
        // O(1) clones keep pointing at the same storage.
        assert_eq!(frozen.clone().as_slice().as_ptr(), ptr);
    }

    #[test]
    fn debug_renders_literal_style() {
        let b = Bytes::from(vec![b'h', b'i', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\"");
    }
}
