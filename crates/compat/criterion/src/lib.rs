//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! crate.
//!
//! Implements the measurement API the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with throughput/sample-size, [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — as a real
//! wall-clock harness: each benchmark is warmed up, then sampled
//! `sample_size` times, and the median/min/max per-iteration times are
//! printed. There is no statistical analysis, HTML report, or baseline
//! comparison.
//!
//! Running a bench binary with `--test` (as `cargo test` does for
//! `harness = false` benches) executes each benchmark exactly once to
//! smoke-test it. The single shot is still timed and lands in the JSON
//! snapshot (median = min = max), so smoke-mode CI runs have every row
//! a full run has — just with single-sample noise instead of a median
//! over `sample_size` samples.
//!
//! Set `CRITERION_JSON=<path>` to also write the measured results as a
//! JSON array (`[{"id", "median_ns", "min_ns", "max_ns"}, ...]`) when
//! the bench binary exits — the workspace's `BENCH_baseline.json`
//! snapshots come from this.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results collected for the `CRITERION_JSON` snapshot.
static RESULTS: Mutex<Vec<(String, u128, u128, u128)>> = Mutex::new(Vec::new());

/// Write the collected results to `$CRITERION_JSON` if it is set.
/// Called by the `criterion_main!`-generated `main` after all groups.
pub fn write_json_snapshot() {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results mutex");
    let mut out = String::from("[\n");
    for (i, (id, median, min, max)) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {median}, \"min_ns\": {min}, \"max_ns\": {max}}}",
            id.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str("\n]\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("criterion: cannot write {}: {err}", path.to_string_lossy());
    }
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Record a non-timing metric (a byte count, a ratio scaled to integer,
/// …) into the JSON snapshot alongside the timing rows. The value is
/// stored in the `median_ns` field (with `min_ns`/`max_ns` equal); the
/// row's `id` should name the unit. This is an extension over upstream
/// criterion, used by the e2e benches to snapshot bytes-per-commit so CI
/// can gate on it.
pub fn record_metric(id: impl Into<String>, value: u128) {
    let id = id.into();
    println!("{id}: {value} (metric)");
    RESULTS
        .lock()
        .expect("results mutex")
        .push((id, value, value, value));
}

/// How many logical items one iteration processes, for per-item
/// throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Warm up, then record `sample_size` samples.
    Measure { sample_size: usize },
    /// `--test`: run the routine once, recording the single-shot time.
    Smoke,
}

impl Bencher {
    /// Time `routine`, adapting the per-sample iteration count so each
    /// sample takes roughly a millisecond.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            let start = Instant::now();
            black_box(routine());
            self.samples.clear();
            self.samples.push(start.elapsed());
            return;
        }
        let Mode::Measure { sample_size } = self.mode else {
            unreachable!()
        };

        // Calibrate: grow the batch until one batch takes >= 1ms (or the
        // routine is clearly slow enough to time individually).
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break took / batch as u32;
            }
            batch *= 2;
        };
        // Keep very slow benchmarks bounded: one iteration per sample.
        let batch = if per_iter >= Duration::from_millis(1) {
            1
        } else {
            batch
        };

        self.samples.clear();
        for _ in 0..sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--test");
        // First non-flag argument filters benchmark names, as upstream.
        let filter = args.into_iter().find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            smoke,
            filter,
        }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &id,
            self.sample_size,
            self.smoke,
            self.filter.as_deref(),
            None,
            f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report per-item throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(
            &id,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.smoke,
            self.criterion.filter.as_deref(),
            self.throughput,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    smoke: bool,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode: if smoke {
            Mode::Smoke
        } else {
            Mode::Measure { sample_size }
        },
        samples: Vec::new(),
    };
    f(&mut bencher);
    if smoke {
        match bencher.samples.first() {
            Some(&shot) => {
                RESULTS.lock().expect("results mutex").push((
                    id.to_string(),
                    shot.as_nanos(),
                    shot.as_nanos(),
                    shot.as_nanos(),
                ));
                println!("{id}: ok (smoke, single shot {shot:?})");
            }
            None => println!("{id}: ok (smoke)"),
        }
        return;
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id}: no samples (Bencher::iter never called)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    RESULTS.lock().expect("results mutex").push((
        id.to_string(),
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
    ));
    let rate = throughput
        .map(|t| {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
            }
        })
        .unwrap_or_default();
    println!("{id}: median {median:?}  (min {min:?}, max {max:?}){rate}");
}

/// Collect benchmark functions into one named runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_snapshot();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut b = Bencher {
            mode: Mode::Measure { sample_size: 5 },
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.samples.len(), 5);
        assert!(count > 5);
    }

    #[test]
    fn smoke_runs_once() {
        let mut b = Bencher {
            mode: Mode::Smoke,
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        // The single shot is timed so smoke runs still snapshot a row.
        assert_eq!(b.samples.len(), 1);
    }
}
