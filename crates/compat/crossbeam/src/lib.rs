//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate, covering the subset this workspace uses: MPSC channels
//! (`channel::{bounded, unbounded}`) and scoped threads
//! (`thread::scope`). Built entirely on `std::sync::mpsc` and
//! `std::thread::scope`.
//!
//! Deviation from upstream: crossbeam channels are MPMC; this stand-in
//! is MPSC (receivers are neither `Clone` nor `Sync`). Every receiver in
//! the workspace is single-consumer, so the difference is unobservable
//! here.

/// MPSC channels with the crossbeam-channel surface used by the
/// workspace: unified `Sender` over bounded/unbounded flavours,
/// `recv_timeout`, and blocking iteration.
pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half of a channel (unified over bounded/unbounded).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while a bounded channel is full.
        /// Errors when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(value),
                Tx::Bounded(tx) => tx.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator that ends when every sender is gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// A channel that holds at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

/// Scoped threads with the crossbeam-utils surface used by the
/// workspace.
pub mod thread {
    /// Spawn handle passed to [`scope`]'s closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure receives the
        /// scope again (crossbeam's signature) so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a thread scope; every spawned thread is joined
    /// before `scope` returns. Unlike `std::thread::scope`, panics in
    /// spawned threads surface as an `Err` (crossbeam's contract) —
    /// except panics that propagate through the closure itself.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|inner| f(&Scope { inner }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_iter() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_and_timeout() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn scope_joins_and_collects() {
        let mut results = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u64 * 10);
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }
}
