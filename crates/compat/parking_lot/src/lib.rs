//! Offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: `Mutex`/`RwLock` with the no-poisoning lock API, implemented
//! over `std::sync`. A poisoned std lock is transparently recovered
//! (parking_lot has no poisoning at all, so this matches its observable
//! behaviour).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
