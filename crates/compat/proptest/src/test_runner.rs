//! The execution engine: seeded random stream, run configuration, and
//! the per-test driver invoked by the [`crate::proptest!`] macro.

/// The random stream strategies draw from.
///
/// xoshiro256++ seeded through splitmix64: tiny, fast, and good enough
/// for test-case generation. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Gen {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Gen {
    /// Build a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Gen {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`. Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Gen::below(0)");
        // Rejection sampling kills modulo bias; the loop almost never
        // iterates more than once.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return draw % bound;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration, mirroring `proptest::test_runner::Config` in
/// struct-update-friendly form.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Shrink-iteration budget. Accepted for API parity with the real
    /// crate; this engine does not shrink, so the value is ignored.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case asked to be discarded (kept for API parity; the macro
    /// subset in use never produces it).
    Reject(String),
}

impl TestCaseError {
    /// A property-violation failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// FNV-1a over the test name: a stable, platform-independent way to give
/// every test its own default seed.
fn name_hash(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn master_seed(test_name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(raw) => {
            raw.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {raw:?}"))
                ^ name_hash(test_name)
        }
        Err(_) => name_hash(test_name),
    }
}

/// Drive one property test: run `config.cases` cases, panicking with the
/// case number and master seed on the first failure.
pub fn run_property_test<F>(test_name: &str, config: &Config, mut case: F)
where
    F: FnMut(&mut Gen) -> Result<(), TestCaseError>,
{
    let seed = master_seed(test_name);
    let mut gen = Gen::from_seed(seed);
    let mut passed = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        case_index += 1;
        if case_index > u64::from(config.cases) * 16 {
            panic!(
                "{test_name}: too many rejected cases ({passed}/{} passed after \
                 {case_index} attempts; master seed {seed})",
                config.cases
            );
        }
        match case(&mut gen) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(message)) => panic!(
                "{test_name}: property failed at case {case_index} \
                 (master seed {seed}): {message}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::from_seed(99);
        let mut b = Gen::from_seed(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = Gen::from_seed(3);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..200 {
                assert!(g.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut g = Gen::from_seed(5);
        for _ in 0..1_000 {
            let v = g.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn runner_counts_cases() {
        let mut calls = 0;
        run_property_test(
            "compat::counts",
            &Config {
                cases: 17,
                ..Config::default()
            },
            |_| {
                calls += 1;
                Ok(())
            },
        );
        assert_eq!(calls, 17);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_reports_failures() {
        run_property_test("compat::fails", &Config::default(), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
