//! Sampling helpers: [`Index`] and [`subsequence`].

use crate::strategy::{Arbitrary, SizeRange, Strategy};
use crate::test_runner::Gen;

/// A length-agnostic index: drawn once, then projected onto any
/// collection length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    /// Project onto `[0, len)`. Panics when `len == 0`, as upstream.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(gen: &mut Gen) -> Self {
        Index(gen.next_u64())
    }
}

/// An order-preserving random subsequence of `values`, with length drawn
/// from `size` (which must fit within `values.len()`).
pub fn subsequence<T: Clone + 'static>(
    values: Vec<T>,
    size: impl Into<SizeRange>,
) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + 'static> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, gen: &mut Gen) -> Vec<T> {
        let want = self.size.pick(gen);
        assert!(
            want <= self.values.len(),
            "subsequence of {} from {} values",
            want,
            self.values.len()
        );
        // Floyd-style reservoir over indices, then sort to preserve the
        // original order.
        let mut picked: Vec<usize> = Vec::with_capacity(want);
        let n = self.values.len();
        for seen in (n - want)..n {
            let candidate = gen.below(seen as u64 + 1) as usize;
            if picked.contains(&candidate) {
                picked.push(seen);
            } else {
                picked.push(candidate);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn index_projects_within_len() {
        let mut g = Gen::from_seed(13);
        for _ in 0..200 {
            let idx = any::<Index>().generate(&mut g);
            assert!(idx.index(7) < 7);
            assert!(idx.index(1) == 0);
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut g = Gen::from_seed(17);
        let base: Vec<u32> = (0..20).collect();
        let strat = subsequence(base.clone(), 0..=20);
        for _ in 0..200 {
            let sub = strat.generate(&mut g);
            assert!(sub.windows(2).all(|w| w[0] < w[1]));
            assert!(sub.iter().all(|v| base.contains(v)));
        }
    }

    #[test]
    fn subsequence_hits_requested_sizes() {
        let mut g = Gen::from_seed(19);
        let strat = subsequence(vec![1, 2, 3, 4, 5], 2..=2);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut g).len(), 2);
        }
    }
}
