//! Collection strategies: `vec`, `vec_deque`, `btree_map`, `btree_set`.

use crate::strategy::{SizeRange, Strategy, VecDequeStrategy, VecStrategy};
use std::collections::{BTreeMap, BTreeSet};

/// `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> impl Strategy<Value = Vec<S::Value>> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// `VecDeque` of values from `element`, with length drawn from `size`.
pub fn vec_deque<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> impl Strategy<Value = std::collections::VecDeque<S::Value>> {
    VecDequeStrategy {
        element,
        size: size.into(),
    }
}

/// `BTreeMap` with keys/values from the given strategies. The requested
/// size is an upper bound: duplicate keys collapse, as upstream.
pub fn btree_map<K, V>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> impl Strategy<Value = BTreeMap<K::Value, V::Value>>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    let size = size.into();
    vec((key, value), size).prop_map(|pairs| pairs.into_iter().collect())
}

/// `BTreeSet` of values from `element`. The requested size is an upper
/// bound: duplicates collapse, as upstream.
pub fn btree_set<S>(
    element: S,
    size: impl Into<SizeRange>,
) -> impl Strategy<Value = BTreeSet<S::Value>>
where
    S: Strategy,
    S::Value: Ord,
{
    let size = size.into();
    vec(element, size).prop_map(|items| items.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::Gen;

    #[test]
    fn vec_lengths_in_range() {
        let mut g = Gen::from_seed(1);
        let strat = vec(0u64..10, 2..=5);
        for _ in 0..200 {
            let v = strat.generate(&mut g);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn maps_and_sets_generate() {
        let mut g = Gen::from_seed(2);
        let m = btree_map(0u8..=255, 0u64..100, 0..8).generate(&mut g);
        assert!(m.len() <= 8);
        let s = btree_set(0u16..50, 3..=3).generate(&mut g);
        assert!(s.len() <= 3);
    }
}
