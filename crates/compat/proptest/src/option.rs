//! Strategies for `Option`.

use crate::strategy::Strategy;
use crate::test_runner::Gen;

/// `Some(value)` about three times out of four, `None` otherwise
/// (matching upstream's default 0.75 `Some` probability).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, gen: &mut Gen) -> Option<S::Value> {
        if gen.below(4) < 3 {
            Some(self.inner.generate(gen))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut g = Gen::from_seed(11);
        let strat = of(0u64..100);
        let draws: Vec<_> = (0..200).map(|_| strat.generate(&mut g)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().flatten().all(|&v| v < 100));
    }
}
