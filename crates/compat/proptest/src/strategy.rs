//! Value-generation strategies: the core trait, primitive sources, and
//! the combinators the workspace uses.

use crate::test_runner::Gen;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is simply a deterministic function of the [`Gen`] stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Discard generated values failing `pred`, retrying with fresh
    /// draws. `whence` labels the filter in the panic raised if the
    /// filter rejects essentially everything.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy yielding clones of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, gen: &mut Gen) -> O {
        (self.map)(self.source.generate(gen))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, gen: &mut Gen) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.source.generate(gen);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        self.0.generate(gen)
    }
}

/// Uniform choice between boxed strategies (the [`crate::prop_oneof!`]
/// backend).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the alternative arms. Panics when empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        let arm = gen.below(self.0.len() as u64) as usize;
        self.0[arm].generate(gen)
    }
}

/// Types with a canonical "any value" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

/// The canonical strategy for `T` over its whole value space.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(gen: &mut Gen) -> $ty {
                // Truncation keeps all bit patterns reachable.
                gen.next_u64() as $ty
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(gen: &mut Gen) -> $ty {
                gen.next_u64() as $ty
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> f64 {
        // Mix raw bit patterns (exercising NaN/infinity/subnormals, as
        // upstream does) with "ordinary" magnitudes so numeric code sees
        // both.
        if gen.next_u64() & 1 == 0 {
            f64::from_bits(gen.next_u64())
        } else {
            (gen.unit_f64() - 0.5) * 2e9
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(gen: &mut Gen) -> f32 {
        f64::arbitrary(gen) as f32
    }
}

macro_rules! range_strategy_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, gen: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + gen.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, gen: &mut Gen) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return gen.next_u64() as $ty;
                }
                lo + gen.below(span + 1) as $ty
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, gen: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(gen.below(span) as $ty)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, gen: &mut Gen) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return gen.next_u64() as $ty;
                }
                lo.wrapping_add(gen.below(span + 1) as $ty)
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, gen: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + gen.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, gen: &mut Gen) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + gen.unit_f64() * (hi - lo)
    }
}

/// String patterns as strategies. Only the `".{lo,hi}"` shape the
/// workspace uses is interpreted (a printable-ASCII string of length in
/// `[lo, hi]`); any other pattern generates its own text literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, gen: &mut Gen) -> String {
        match parse_dot_repeat(self) {
            Some((lo, hi)) => {
                let len = lo + gen.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| {
                        // Printable ASCII: 0x20 ..= 0x7E.
                        (0x20 + gen.below(0x5F) as u8) as char
                    })
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(gen),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A size specification for collection strategies: a fixed size, an
/// exclusive range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    /// Draw a size from the range.
    pub fn pick(&self, gen: &mut Gen) -> usize {
        self.lo + gen.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub(crate) struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
        let len = self.size.pick(gen);
        (0..len).map(|_| self.element.generate(gen)).collect()
    }
}

pub(crate) struct VecDequeStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecDequeStrategy<S> {
    type Value = VecDeque<S::Value>;
    fn generate(&self, gen: &mut Gen) -> VecDeque<S::Value> {
        let len = self.size.pick(gen);
        (0..len).map(|_| self.element.generate(gen)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::Gen;

    fn gen() -> Gen {
        Gen::from_seed(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = gen();
        for _ in 0..1_000 {
            let v = (10u64..20).generate(&mut g);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut g);
            assert!((-5..=5).contains(&w));
            let f = (0.5f64..2.0).generate(&mut g);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut g = gen();
        let strat = crate::prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            (100u64..110).prop_filter("unused", |v| v % 2 == 0),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut g);
            assert!(v % 2 == 0);
            assert!(v < 20 || (100..110).contains(&v));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut g = gen();
        for _ in 0..200 {
            let s = ".{0,8}".generate(&mut g);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert_eq!("literal".generate(&mut g), "literal");
    }

    #[test]
    fn determinism_by_seed() {
        let a: Vec<u64> = {
            let mut g = Gen::from_seed(7);
            (0..16)
                .map(|_| (0u64..1_000_000).generate(&mut g))
                .collect()
        };
        let b: Vec<u64> = {
            let mut g = Gen::from_seed(7);
            (0..16)
                .map(|_| (0u64..1_000_000).generate(&mut g))
                .collect()
        };
        assert_eq!(a, b);
    }
}
