//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the proptest *surface* the workspace uses as a real —
//! randomized, deterministic-by-seed, but **non-shrinking** — property
//! testing engine:
//!
//! * [`Strategy`] with `prop_map` / `prop_filter` / `boxed`
//! * [`prelude::any`] for primitives and [`sample::Index`]
//! * ranges (`0u64..100`, `-1e6f64..1e6`, `1..=5`) as strategies
//! * tuples of strategies (arity 2–8) as strategies
//! * `".{lo,hi}"` string patterns (the only regex shape the workspace
//!   uses; other patterns generate the pattern text literally)
//! * [`collection`]: `vec`, `vec_deque`, `btree_map`, `btree_set`
//! * [`option::of`], [`sample::subsequence`], [`prelude::Just`]
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Failures report the case number and the master seed. Re-running the
//! same binary reproduces them (the per-test seed is derived from the
//! test name, not wall-clock time). Set `PROPTEST_SEED=<u64>` to vary
//! the exploration.

pub mod strategy;

pub mod test_runner;

pub mod collection;
pub mod option;
pub mod sample;

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::{Config as ProptestConfig, TestCaseError};

/// Run a block of property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
///     #[test]
///     fn name(x in 0u64..10, v in any::<u8>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_property_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |__proptest_gen| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_gen,
                            );
                        )+
                        let __proptest_outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        __proptest_outcome
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
