//! Regression corpus for the model checker's schedule replayer.
//!
//! The files under `tests/schedules/` are recorded by `marp-mcheck
//! sample` (canonical schedules, one per protocol family) and
//! `marp-mcheck selftest` (a shrunk counterexample for the seeded
//! `lifo-blind` protocol mutation). Replaying them pins down three
//! things at once: the schedule text format stays parseable, the
//! replayer's event resolution keeps finding the recorded steps as the
//! protocols evolve, and each file's verdict — clean or violating —
//! stays what it was when recorded.

use marp_mcheck::{from_text, replay};
use std::path::Path;

fn load(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/schedules")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Replay `name` and require a clean run with every write completed.
fn assert_clean(name: &str) {
    let (spec, steps) = from_text(&load(name)).expect("schedule parses");
    let outcome = replay(&spec, &steps);
    assert!(
        outcome.all_violations().is_empty(),
        "{name}: unexpected violations: {:?}",
        outcome.all_violations()
    );
    assert_eq!(
        outcome.completed, spec.agents,
        "{name}: only {}/{} writes completed",
        outcome.completed, spec.agents
    );
    // Canonical schedules should still resolve step for step; a large
    // skip count means recorded events no longer match the protocol.
    assert!(
        outcome.steps_skipped <= steps.len() / 4,
        "{name}: {} of {} recorded steps no longer resolve",
        outcome.steps_skipped,
        steps.len()
    );
}

#[test]
fn canonical_marp_schedule_replays_clean() {
    assert_clean("marp_3x2_canonical.txt");
}

#[test]
fn canonical_mcv_schedule_replays_clean() {
    assert_clean("mcv_3x2_canonical.txt");
}

#[test]
fn canonical_primary_copy_schedule_replays_clean() {
    assert_clean("pc_3x2_canonical.txt");
}

#[test]
fn lifo_blind_counterexample_still_violates_lost_update() {
    let (spec, steps) =
        from_text(&load("marp_3x2_lifo_blind_lost_update.txt")).expect("schedule parses");
    let outcome = replay(&spec, &steps);
    assert!(
        outcome.violates(&["lost-update"]),
        "counterexample no longer reproduces: {:?}",
        outcome.all_violations()
    );
}
