//! Fault-storm integration tests: crashes, transient outages and
//! partitions thrown at a MARP cluster; consistency must survive and
//! recovering replicas must catch up.

use marp_core::MarpNode;
use marp_lab::{run_scenario, ProtocolKind, Scenario};
use marp_net::FaultPlan;
use marp_sim::SimTime;
use std::time::Duration;

#[test]
fn crash_storm_stays_consistent() {
    let mut s = Scenario::paper(5, 50.0, 13);
    s.requests_per_client = 15;
    s.horizon = Some(Duration::from_secs(240));
    s.faults = Some(
        FaultPlan::new(5)
            .detect_delay(Duration::from_millis(100))
            .crash(1, SimTime::from_secs(1), Duration::from_secs(10))
            .crash(3, SimTime::from_secs(4), Duration::from_secs(15))
            .transient(0, SimTime::from_secs(8), Duration::from_millis(300))
            .transient(2, SimTime::from_secs(12), Duration::from_millis(500)),
    );
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    // Majority stayed alive throughout (never more than 2 down), so the
    // vast majority of writes must complete within the horizon;
    // requests accepted by a server in its pre-crash life are lost with
    // it until re-dispatch, so allow a small shortfall.
    let expected = 75u64;
    assert!(
        outcome.metrics.completed >= expected - 5,
        "only {} of {expected} completed",
        outcome.metrics.completed
    );
}

#[test]
fn partition_heals_and_minority_catches_up() {
    let mut s = Scenario::paper(5, 40.0, 17);
    s.requests_per_client = 12;
    s.horizon = Some(Duration::from_secs(240));
    // Servers 3,4 cut off for 5 s; the 0-1-2 majority keeps committing.
    s.faults = Some(FaultPlan::new(5).partition(
        SimTime::from_secs(1),
        Duration::from_secs(5),
        &[&[0, 1, 2], &[3, 4]],
    ));
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    assert!(
        outcome.metrics.completed >= 55,
        "only {} completed",
        outcome.metrics.completed
    );
}

#[test]
fn crashed_agents_requests_are_redispatched() {
    // The home of a dispatched agent crashes while the agent may be
    // anywhere; lock leases clean up its entries and the home's
    // re-dispatch machinery (or the agent itself, if it survived
    // elsewhere) finishes the work.
    let mut s = Scenario::paper(5, 20.0, 23);
    s.requests_per_client = 10;
    s.horizon = Some(Duration::from_secs(300));
    s.faults = Some(
        FaultPlan::new(5)
            .detect_delay(Duration::from_millis(100))
            .crash(0, SimTime::from_millis(1500), Duration::from_secs(5))
            .crash(4, SimTime::from_millis(1800), Duration::from_secs(5)),
    );
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    assert!(
        outcome.metrics.completed >= 40,
        "only {} of 50 completed",
        outcome.metrics.completed
    );
}

#[test]
fn primary_copy_stalls_where_marp_does_not() {
    // Same fault (node 0 dies for good), same workload: MARP keeps
    // committing, primary-copy cannot commit anything new.
    let faults = FaultPlan::new(5)
        .detect_delay(Duration::from_millis(100))
        .crash_forever(0, SimTime::from_millis(100));

    let mut marp = Scenario::paper(5, 100.0, 31);
    marp.requests_per_client = 8;
    marp.horizon = Some(Duration::from_secs(240));
    marp.faults = Some(faults.clone());
    let marp_out = run_scenario(&marp);
    marp_out.audit.assert_ok();

    let mut pc = marp.clone().with_protocol(ProtocolKind::PrimaryCopy);
    pc.faults = Some(faults);
    let pc_out = run_scenario(&pc);

    // Clients of the 4 surviving MARP servers all finish (32 writes);
    // node 0's own client cannot reach its dead server.
    assert!(
        marp_out.metrics.completed >= 32,
        "MARP completed only {}",
        marp_out.metrics.completed
    );
    assert!(
        pc_out.metrics.completed < marp_out.metrics.completed / 2,
        "primary-copy should stall without its primary (completed {})",
        pc_out.metrics.completed
    );
}

#[test]
fn recovered_replica_log_matches_survivors() {
    use marp_core::{build_cluster, wrap_client_request, MarpConfig};
    use marp_net::{LinkModel, SimTransport, Topology};
    use marp_replica::ClientProcess;
    use marp_sim::{SimRng, Simulation, TraceLevel};
    use marp_workload::WorkloadSource;

    let n = 5usize;
    let topo = Topology::uniform_lan(n + 2, Duration::from_millis(2));
    let plan = FaultPlan::new(n).crash(2, SimTime::from_millis(100), Duration::from_secs(4));
    let transport = SimTransport::new(topo.clone(), LinkModel::ideal(), SimRng::from_seed(3))
        .with_schedule(plan.net_schedule());
    let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    for k in 0..2 {
        sim.add_process(Box::new(ClientProcess::new(
            k,
            Box::new(WorkloadSource::paper_writes(80.0, 12, 900 + u64::from(k))),
            wrap_client_request,
        )));
    }
    plan.schedule_controls(&mut sim);
    sim.run_until(SimTime::from_secs(60));

    let logs: Vec<Vec<u64>> = (0..n as u16)
        .map(|s| {
            sim.process::<MarpNode>(s)
                .unwrap()
                .state()
                .core
                .store
                .log()
                .iter()
                .map(|r| r.version)
                .collect()
        })
        .collect();
    assert_eq!(logs[0].len(), 24);
    for (server, log) in logs.iter().enumerate() {
        assert_eq!(log, &logs[0], "server {server} diverged");
    }
}

#[test]
fn regression_presence_gate_prevents_claim_abort_livelock() {
    // Exact configuration that once livelocked: node 0 crashes at 1 s
    // for 20 s, node 1 blips at 2 s, seed 202. Agents whose itinerary
    // ended early (replicas declared unavailable during the crash) used
    // to tie-"win" with presence at fewer than a majority of Locking
    // Lists and then claim/abort forever; the presence gate in
    // `marp_core::lt::decide` keeps them travelling instead.
    let mut s = Scenario::paper(5, 100.0, 202);
    s.requests_per_client = 40;
    s.horizon = Some(Duration::from_secs(180));
    s.faults = Some(
        FaultPlan::new(5)
            .detect_delay(Duration::from_millis(100))
            .crash(0, SimTime::from_secs(1), Duration::from_secs(20))
            .transient(1, SimTime::from_secs(2), Duration::from_millis(400)),
    );
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    // Nearly everything commits (requests sent to the dead server while
    // it was down are lost at the client, which does not retry).
    assert!(
        outcome.metrics.completed >= 160,
        "completed only {} of 200",
        outcome.metrics.completed
    );
    // The livelock burned hundreds of thousands of messages; a healthy
    // run is two orders of magnitude cheaper.
    assert!(
        outcome.stats.messages_sent < 100_000,
        "suspicious message volume: {}",
        outcome.stats.messages_sent
    );
}

#[test]
fn lossy_network_degrades_gracefully_and_stays_consistent() {
    // 1% independent message loss. MARP's channels are nominally
    // reliable (paper §2), but every layer already retries or repairs:
    // migrations are acked, claims time out and re-run, missed commits
    // are back-filled by anti-entropy. Consistency must be untouched;
    // a small completion shortfall (lost client traffic has no retry)
    // is acceptable.
    let mut s = Scenario::paper(5, 60.0, 55);
    s.requests_per_client = 8;
    s.horizon = Some(Duration::from_secs(120));
    s.faults = Some(FaultPlan::new(5).loss(SimTime::ZERO, 0.01));
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    assert!(
        outcome.metrics.completed >= 34,
        "only {} of 40 completed under 1% loss",
        outcome.metrics.completed
    );
}

#[test]
fn directional_link_outage_is_routed_around() {
    // The 0→1 link (only) is dead for 3 s. Agents migrating 0→1 fail
    // and retry or declare node 1 unavailable for the round; everything
    // still commits because majorities avoid the broken direction.
    let mut s = Scenario::paper(5, 50.0, 66);
    s.requests_per_client = 10;
    s.horizon = Some(Duration::from_secs(240));
    s.faults = Some(FaultPlan::new(5).link_outage(
        0,
        1,
        SimTime::from_millis(200),
        Duration::from_secs(3),
    ));
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    assert_eq!(
        outcome.metrics.completed, 50,
        "a one-way link outage must not lose updates"
    );
}
