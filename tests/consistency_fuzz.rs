//! Cross-crate consistency fuzzing: MARP clusters across sizes, loads
//! and seeds — every run must complete all writes, stay totally
//! ordered, and respect the Theorem 3 visit bounds.

use marp_lab::{run_scenario, run_sweep, Scenario};

#[test]
fn marp_is_consistent_across_sizes_and_loads() {
    let mut scenarios = Vec::new();
    for &n in &[3usize, 4, 5, 7] {
        for &mean_ms in &[6.0, 30.0, 90.0] {
            for &seed in &[11u64, 22] {
                let mut s = Scenario::paper(n, mean_ms, seed);
                s.requests_per_client = 8;
                scenarios.push(s);
            }
        }
    }
    let outcomes = run_sweep(&scenarios, None);
    for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
        outcome.audit.assert_ok();
        let expected = (scenario.n_servers * 8) as u64;
        assert_eq!(
            outcome.metrics.completed,
            expected,
            "n={} mean={} seed={}: {} of {} completed",
            scenario.n_servers,
            scenario.mean_interarrival_ms,
            scenario.seed,
            outcome.metrics.completed,
            expected
        );
        // No duplicate completions without faults.
        assert_eq!(outcome.audit.duplicate_completions, 0);
    }
}

#[test]
fn heavy_contention_single_key_is_still_totally_ordered() {
    let mut s = Scenario::paper(5, 2.0, 77); // brutal: 2 ms mean arrivals
    s.requests_per_client = 20;
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    assert_eq!(outcome.metrics.completed, 100);
    assert_eq!(outcome.audit.committed_versions, 100);
}

#[test]
fn ties_actually_occur_and_resolve_on_even_clusters() {
    // Even cluster sizes need 3-of-4 tops, making stuck configurations
    // (2/2 splits) common; the tie rule must fire and stay safe.
    let mut tie_wins = 0;
    for seed in [1u64, 2, 3, 4, 5] {
        let mut s = Scenario::paper(4, 3.0, seed);
        s.requests_per_client = 15;
        let outcome = run_scenario(&s);
        outcome.audit.assert_ok();
        assert_eq!(outcome.metrics.completed, 60);
        tie_wins += outcome.audit.tie_grants;
    }
    assert!(
        tie_wins > 0,
        "expected at least one tie-rule win across five contended runs"
    );
}

#[test]
fn every_replica_converges_to_the_same_final_version() {
    let mut s = Scenario::paper(5, 10.0, 5);
    s.requests_per_client = 10;
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    // 5 clients × 10 writes = 50 versions; the audit already checked
    // that each version has a single owner and applications are dense
    // and in order at every node, so equality of counts implies full
    // convergence.
    assert_eq!(outcome.audit.committed_versions, 50);
}

#[test]
fn adaptive_batching_survives_bursts_and_coalesces() {
    let mut s = Scenario::paper(5, 10.0, 31);
    s.bursty = true;
    s.adaptive_batching = true;
    s.requests_per_client = 30;
    let outcome = run_scenario(&s);
    outcome.audit.assert_ok();
    assert_eq!(outcome.metrics.completed, 150);
    // Coalescing happened: strictly fewer agents than requests.
    assert!(
        outcome.metrics.agents < 150,
        "adaptive batching never coalesced ({} agents)",
        outcome.metrics.agents
    );
}
