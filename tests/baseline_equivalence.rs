//! Every consistent protocol must agree on *what* was committed, even
//! if they serialize concurrent writes differently: the set of applied
//! requests equals the set of issued requests, and each protocol's
//! replicas agree among themselves.

use marp_lab::{run_scenario, ProtocolKind, Scenario};

fn base(protocol: ProtocolKind) -> Scenario {
    let mut s = Scenario::paper(5, 25.0, 404).with_protocol(protocol);
    s.requests_per_client = 10;
    s
}

#[test]
fn all_protocols_complete_the_same_request_set() {
    let expected = 50u64;
    for protocol in [
        ProtocolKind::marp(),
        ProtocolKind::Mcv,
        ProtocolKind::AvailableCopy,
        ProtocolKind::WeightedVoting {
            read_one_write_all: false,
        },
        ProtocolKind::PrimaryCopy,
    ] {
        let label = protocol.label();
        let outcome = run_scenario(&base(protocol));
        outcome.audit.assert_ok();
        assert_eq!(
            outcome.metrics.completed, expected,
            "{label}: completed {} of {expected}",
            outcome.metrics.completed
        );
        assert_eq!(outcome.metrics.incomplete(), 0, "{label}: lost requests");
    }
}

#[test]
fn consistent_protocols_commit_exactly_one_version_per_request() {
    for protocol in [
        ProtocolKind::marp(),
        ProtocolKind::Mcv,
        ProtocolKind::PrimaryCopy,
    ] {
        let label = protocol.label();
        let outcome = run_scenario(&base(protocol));
        outcome.audit.assert_ok();
        assert_eq!(
            outcome.audit.committed_versions, 50,
            "{label}: {} versions for 50 requests",
            outcome.audit.committed_versions
        );
    }
}

#[test]
fn message_cost_ranking_is_stable() {
    // A qualitative shape check (not absolute numbers): the optimistic
    // write-all protocol uses fewer messages per update than the
    // quorum-based ones, and the consistent protocols all terminate.
    let mut costs = Vec::new();
    for protocol in [
        ProtocolKind::AvailableCopy,
        ProtocolKind::Mcv,
        ProtocolKind::marp(),
    ] {
        let label = protocol.label();
        let outcome = run_scenario(&base(protocol));
        costs.push((
            label,
            outcome.stats.messages_sent as f64 / outcome.metrics.completed.max(1) as f64,
        ));
    }
    let ac = costs[0].1;
    let mcv = costs[1].1;
    let marp = costs[2].1;
    assert!(ac < mcv, "AC ({ac:.1}) should undercut MCV ({mcv:.1})");
    assert!(ac < marp, "AC ({ac:.1}) should undercut MARP ({marp:.1})");
}
