//! Cross-backend validation: the same MARP cluster driven by the
//! deterministic discrete-event engine and by real OS threads must
//! agree on what was committed.

use marp_core::{build_cluster, wrap_client_request, MarpConfig, MarpNode};
use marp_metrics::{audit, PaperMetrics};
use marp_net::{LinkModel, RoutingTable, SimTransport, Topology};
use marp_replica::ClientProcess;
use marp_sim::{Process, SimRng, SimTime, Simulation, TraceLevel};
use marp_threaded::{run_threaded, ThreadedConfig};
use marp_workload::WorkloadSource;
use std::time::Duration;

const N: usize = 3;
const REQUESTS: u64 = 8;

fn topology() -> Topology {
    Topology::uniform_lan(N + N, Duration::from_millis(1))
}

#[test]
fn threaded_backend_matches_des_on_commits() {
    // --- deterministic engine ---
    let topo = topology();
    let transport = SimTransport::new(topo.clone(), LinkModel::ideal(), SimRng::from_seed(9));
    let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);
    build_cluster(&mut sim, &MarpConfig::new(N), &topo);
    for k in 0..N {
        sim.add_process(Box::new(ClientProcess::new(
            k as u16,
            Box::new(WorkloadSource::paper_writes(30.0, REQUESTS, 500 + k as u64)),
            wrap_client_request,
        )));
    }
    sim.run_until(SimTime::from_secs(30));
    let des_metrics = PaperMetrics::from_trace(sim.trace());
    audit(sim.trace(), N).assert_ok();
    assert_eq!(des_metrics.completed, N as u64 * REQUESTS);
    let des_final = sim
        .process::<MarpNode>(0)
        .unwrap()
        .state()
        .core
        .store
        .applied_version();

    // --- threaded backend, same processes ---
    let topo = topology();
    let mut processes: Vec<Box<dyn Process>> = Vec::new();
    for me in 0..N as u16 {
        processes.push(Box::new(MarpNode::new(
            me,
            MarpConfig::new(N),
            RoutingTable::from_topology(me, &topo),
        )));
    }
    for k in 0..N {
        processes.push(Box::new(ClientProcess::new(
            k as u16,
            Box::new(WorkloadSource::paper_writes(30.0, REQUESTS, 500 + k as u64)),
            wrap_client_request,
        )));
    }
    let transport = SimTransport::new(topo, LinkModel::ideal(), SimRng::from_seed(9));
    let run = run_threaded(
        processes,
        Box::new(transport),
        Duration::from_secs(6),
        ThreadedConfig {
            speed: 4.0,
            trace_level: TraceLevel::Protocol,
        },
    );
    let threaded_metrics = PaperMetrics::from_trace(&run.trace);
    audit(&run.trace, N).assert_ok();

    // Wall-clock jitter means the threaded run may cut off a straggler,
    // but the overwhelming majority must commit and nothing may violate
    // consistency.
    assert!(
        threaded_metrics.completed >= (N as u64 * REQUESTS).saturating_sub(2),
        "threaded completed only {} of {}",
        threaded_metrics.completed,
        N as u64 * REQUESTS
    );
    let threaded_final = run
        .process::<MarpNode>(0)
        .unwrap()
        .state()
        .core
        .store
        .applied_version();
    assert!(
        threaded_final + 2 >= des_final,
        "threaded applied {threaded_final}, DES applied {des_final}"
    );
}
