//! Randomized fault fuzzing: arbitrary crash/outage schedules that keep
//! a majority alive must never violate consistency, and the system must
//! keep making progress.

use marp_lab::{run_scenario, Scenario};
use marp_net::FaultPlan;
use marp_sim::SimTime;
use proptest::prelude::*;
use std::time::Duration;

/// A schedule of up to three staggered crashes over a 5-node cluster.
/// Crashes target distinct nodes and are long enough to overlap, but by
/// construction at most two nodes are ever down at once, so a majority
/// (3 of 5) survives.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::sample::subsequence(vec![0u16, 1, 2, 3, 4], 1..=2),
        proptest::collection::vec((100u64..5_000, 200u64..8_000), 1..=2),
        0u64..200,
    )
        .prop_map(|(nodes, windows, detect_ms)| {
            let mut plan = FaultPlan::new(5).detect_delay(Duration::from_millis(50 + detect_ms));
            for (&node, &(at_ms, outage_ms)) in nodes.iter().zip(windows.iter()) {
                plan = plan.crash(
                    node,
                    SimTime::from_millis(at_ms),
                    Duration::from_millis(outage_ms),
                );
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case is a long fault-injected simulation
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_crash_schedules_stay_consistent(
        plan in arb_fault_plan(),
        mean_ms in 40.0f64..150.0,
        seed in any::<u64>(),
    ) {
        let mut scenario = Scenario::paper(5, mean_ms, seed);
        scenario.requests_per_client = 6;
        scenario.horizon = Some(Duration::from_secs(240));
        scenario.faults = Some(plan);
        let outcome = run_scenario(&scenario);
        // The invariants hold unconditionally...
        outcome.audit.assert_ok();
        // ...and with a majority always alive, most work finishes
        // (requests accepted by a server that crashes before
        // dispatching can be lost until its recovery re-issues them,
        // and the horizon bounds stragglers).
        prop_assert!(
            outcome.metrics.completed >= 30 * 8 / 10,
            "completed only {} of 30",
            outcome.metrics.completed
        );
    }
}

#[test]
fn back_to_back_crashes_of_the_same_node() {
    let plan = FaultPlan::new(5)
        .crash(2, SimTime::from_millis(500), Duration::from_millis(800))
        .crash(2, SimTime::from_millis(2_000), Duration::from_millis(800))
        .crash(2, SimTime::from_millis(4_000), Duration::from_millis(800));
    let mut scenario = Scenario::paper(5, 80.0, 99);
    scenario.requests_per_client = 8;
    scenario.horizon = Some(Duration::from_secs(240));
    scenario.faults = Some(plan);
    let outcome = run_scenario(&scenario);
    outcome.audit.assert_ok();
    assert!(
        outcome.metrics.completed >= 36,
        "completed only {} of 40",
        outcome.metrics.completed
    );
}
