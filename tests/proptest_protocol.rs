//! Property-based protocol tests: arbitrary small workloads and
//! locking-table configurations must never violate the paper's
//! invariants.

use marp_agent::AgentId;
use marp_core::lt::{decide, LockingTable, Priority};
use marp_lab::{run_scenario, Scenario};
use marp_replica::{LlSnapshot, UpdatedList};
use marp_sim::{NodeId, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full simulation
        ..ProptestConfig::default()
    })]

    /// Any small MARP workload completes everything, totally ordered.
    #[test]
    fn random_workloads_stay_consistent(
        n in 3usize..6,
        mean_ms in 3.0f64..60.0,
        requests in 2u64..8,
        seed in any::<u64>(),
    ) {
        let mut scenario = Scenario::paper(n, mean_ms, seed);
        scenario.requests_per_client = requests;
        let outcome = run_scenario(&scenario);
        outcome.audit.assert_ok();
        prop_assert_eq!(outcome.metrics.completed, n as u64 * requests);
        prop_assert_eq!(outcome.audit.duplicate_completions, 0);
    }
}

/// Strategy: a locking table over `n` servers populated from a pool of
/// agents with arbitrary queue orders.
fn arbitrary_table(n: usize, agents: usize) -> impl Strategy<Value = (LockingTable, Vec<AgentId>)> {
    let ids: Vec<AgentId> = (0..agents)
        .map(|i| AgentId::new(i as NodeId, SimTime::from_millis(i as u64 % 3), i as u32))
        .collect();
    let queues =
        proptest::collection::vec(proptest::collection::vec(0..agents, 0..agents.max(1)), n);
    (queues, Just(ids)).prop_map(move |(queues, ids)| {
        let mut table = LockingTable::new();
        for (server, queue) in queues.into_iter().enumerate() {
            let mut seen = Vec::new();
            let agents_in_order: Vec<AgentId> = queue
                .into_iter()
                .filter(|idx| {
                    if seen.contains(idx) {
                        false
                    } else {
                        seen.push(*idx);
                        true
                    }
                })
                .map(|idx| ids[idx])
                .collect();
            table.merge(
                server as NodeId,
                LlSnapshot {
                    version: 1,
                    taken_at: SimTime::from_millis(1),
                    queue: agents_in_order,
                },
            );
        }
        (table, ids)
    })
}

proptest! {
    /// Theorem 2 property: with a shared view, at most one agent ever
    /// decides it has won.
    #[test]
    fn at_most_one_winner_per_view((table, ids) in arbitrary_table(5, 4)) {
        let finished = UpdatedList::new();
        let winners: Vec<AgentId> = ids
            .iter()
            .copied()
            .filter(|&me| {
                matches!(
                    decide(&table, me, 5, &finished, &[]),
                    Priority::Win { .. }
                )
            })
            .collect();
        prop_assert!(winners.len() <= 1, "multiple winners: {winners:?}");
    }

    /// An outright winner really is top at a strict majority.
    #[test]
    fn outright_wins_imply_majority_tops((table, ids) in arbitrary_table(5, 4)) {
        let finished = UpdatedList::new();
        for me in ids.iter().copied() {
            if let Priority::Win { via_tie: false, .. } =
                decide(&table, me, 5, &finished, &[])
            {
                let tops = table
                    .top_counts(&finished)
                    .get(&me)
                    .copied()
                    .unwrap_or(0);
                prop_assert!(tops >= 3, "outright win with only {tops} tops");
            }
        }
    }

    /// Tie wins carry a certificate naming every rival the winner knows
    /// about.
    #[test]
    fn tie_wins_have_complete_certificates((table, ids) in arbitrary_table(4, 4)) {
        let finished = UpdatedList::new();
        for me in ids.iter().copied() {
            if let Priority::Win {
                via_tie: true,
                certificate,
            } = decide(&table, me, 4, &finished, &[])
            {
                for rival in table.known_agents(&finished) {
                    if rival != me {
                        prop_assert!(
                            certificate.contains(&rival),
                            "certificate misses rival {rival}"
                        );
                    }
                }
            }
        }
    }

    /// Marking agents finished can only help (never un-win) the
    /// remaining agents' standing monotonically: a finished agent never
    /// appears as anyone's blocker.
    #[test]
    fn finished_agents_never_count_as_tops((table, ids) in arbitrary_table(5, 4)) {
        let mut finished = UpdatedList::new();
        for &done in ids.iter().take(2) {
            finished.record(done, SimTime::from_millis(1));
        }
        let counts = table.top_counts(&finished);
        for done in ids.iter().take(2) {
            prop_assert!(!counts.contains_key(done));
        }
    }
}
