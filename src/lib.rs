//! Umbrella crate for the MARP reproduction.
//!
//! Re-exports the workspace crates so examples, integration tests and
//! downstream users can depend on a single package. See `README.md` for
//! the tour and `DESIGN.md` for the system inventory.

pub use marp_agent as agent;
pub use marp_baselines as baselines;
pub use marp_core as core;
pub use marp_lab as lab;
pub use marp_metrics as metrics;
pub use marp_net as net;
pub use marp_replica as replica;
pub use marp_sim as sim;
pub use marp_threaded as threaded;
pub use marp_wire as wire;
pub use marp_workload as workload;
