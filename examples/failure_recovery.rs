//! Failure and recovery: the paper's fault model in action.
//!
//! A 5-replica MARP cluster keeps committing while one replica is
//! crashed for twenty seconds and another suffers a short transient
//! outage. Watch the retry/declare-unavailable machinery, the lock-lease
//! cleanup for an agent that dies with its host, and the recovered
//! replica catching up by anti-entropy — all while the consistency audit
//! stays clean.
//!
//! Run with: `cargo run --release --example failure_recovery`

use marp_core::{build_cluster, wrap_client_request, MarpConfig, MarpNode};
use marp_metrics::audit;
use marp_net::{FaultPlan, LinkModel, SimTransport, Topology};
use marp_replica::ClientProcess;
use marp_sim::{SimRng, SimTime, Simulation, TraceEvent, TraceLevel};
use marp_workload::WorkloadSource;
use std::time::Duration;

fn main() {
    let n = 5usize;
    let clients = n;
    let topo = Topology::uniform_lan(n + clients, Duration::from_millis(2));
    let plan = FaultPlan::new(n)
        .detect_delay(Duration::from_millis(150))
        // Server 4 crashes at t=1s for 20s.
        .crash(4, SimTime::from_secs(1), Duration::from_secs(20))
        // Server 2 blips out briefly at t=3s.
        .transient(2, SimTime::from_secs(3), Duration::from_millis(400));

    let transport = SimTransport::new(topo.clone(), LinkModel::lan_1990s(), SimRng::from_seed(7))
        .with_schedule(plan.net_schedule());
    let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);
    let cfg = MarpConfig::new(n);
    build_cluster(&mut sim, &cfg, &topo);
    for k in 0..clients {
        let source = WorkloadSource::paper_writes(400.0, 25, 1000 + k as u64);
        sim.add_process(Box::new(ClientProcess::new(
            (k % n) as u16,
            Box::new(source),
            wrap_client_request,
        )));
    }
    plan.schedule_controls(&mut sim);

    sim.run_until(SimTime::from_secs(120));

    println!("=== fault timeline ===");
    for record in sim.trace().records() {
        match &record.event {
            TraceEvent::NodeDown(node) => {
                println!("{:>10}  server {node} CRASHED", record.at.to_string())
            }
            TraceEvent::NodeUp(node) => {
                println!("{:>10}  server {node} recovered", record.at.to_string())
            }
            TraceEvent::AgentMigrateFailed { agent, to, .. } => println!(
                "{:>10}  agent {agent:#x} migration to {to} timed out, retrying",
                record.at.to_string()
            ),
            TraceEvent::ReplicaDeclaredUnavailable { agent, node } => println!(
                "{:>10}  agent {agent:#x} declared server {node} unavailable for this round",
                record.at.to_string()
            ),
            TraceEvent::Custom {
                kind: "lock-lease-expired",
                a,
                b,
            } => println!(
                "{:>10}  server {b} purged the expired lock of dead agent {a:#x}",
                record.at.to_string()
            ),
            TraceEvent::Custom {
                kind: "batch-redispatched",
                a,
                b,
            } => println!(
                "{:>10}  home re-dispatched {b} request(s) lost with agent {a:#x}",
                record.at.to_string()
            ),
            _ => {}
        }
    }

    // The recovered replica caught up.
    println!("\n=== final state ===");
    let reference = sim
        .process::<MarpNode>(0)
        .unwrap()
        .state()
        .core
        .store
        .applied_version();
    for server in 0..n as u16 {
        let node = sim.process::<MarpNode>(server).unwrap();
        let version = node.state().core.store.applied_version();
        println!("server {server}: applied version {version}");
        assert_eq!(version, reference, "server {server} failed to catch up");
    }

    let report = audit(sim.trace(), n);
    report.assert_ok();
    let completed = sim
        .trace()
        .count(|e| matches!(e, TraceEvent::UpdateCompleted { .. }));
    println!(
        "\naudit: clean — {} updates committed in the same order at all {n} replicas \
         despite 1 crash + 1 transient outage ({} duplicate completions from re-dispatch)",
        completed, report.duplicate_completions
    );
}
