//! Follow one mobile agent's journey under contention.
//!
//! Three servers dispatch update agents at nearly the same instant, so
//! they race for the distributed lock. The example replays the trace as
//! a narrated journey per agent: lock requests appended to Locking
//! Lists, migrations, a win (possibly via the tie rule), the
//! UPDATE/ACK/COMMIT round, and disposal — Algorithm 1, step by step.
//!
//! Run with: `cargo run --example agent_journey`
//!
//! Pass `--trace-out run.bin` / `--metrics-out run.csv` to record the
//! run for `marp-trace` (export, journey, critical-path, ...).

use marp_core::{build_cluster, wrap_client_request, MarpConfig};
use marp_metrics::audit;
use marp_net::{LinkModel, SimTransport, Topology};
use marp_replica::{ClientProcess, Operation, ScriptedSource};
use marp_sim::{agent_key_parts, SimRng, SimTime, Simulation, TraceEvent, TraceLevel};
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    let obs = marp_obs::ObsOptions::from_env();
    let n = 5usize;
    let writers = 3usize;
    let topo = Topology::uniform_lan(n + writers, Duration::from_millis(2));
    let transport = SimTransport::new(topo.clone(), LinkModel::ideal(), SimRng::from_seed(11));
    let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);
    build_cluster(&mut sim, &MarpConfig::new(n), &topo);
    // Three near-simultaneous writers on different home servers.
    for w in 0..writers {
        let script = ScriptedSource::new([(
            Duration::from_millis(1 + w as u64), // 1, 2, 3 ms apart
            Operation::Write {
                key: 7,
                value: 100 + w as u64,
            },
        )]);
        sim.add_process(Box::new(ClientProcess::new(
            w as u16,
            Box::new(script),
            wrap_client_request,
        )));
    }
    sim.run_until(SimTime::from_secs(5));

    // Group the journey per agent.
    let mut journeys: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for record in sim.trace().records() {
        let (agent, line) = match &record.event {
            TraceEvent::AgentDispatched { agent, home, batch } => (
                *agent,
                format!("dispatched from home server {home} with {batch} request(s)"),
            ),
            TraceEvent::LockRequested { agent, node } => (
                *agent,
                format!("appended itself to the Locking List at server {node}"),
            ),
            TraceEvent::AgentMigrated {
                agent,
                from,
                to,
                hops,
            } => (*agent, format!("migrated {from} -> {to} (hop {hops})")),
            TraceEvent::LockGranted {
                agent,
                visits,
                via_tie,
                ..
            } => (
                *agent,
                format!(
                    "WON the lock after {visits} visits{}",
                    if *via_tie {
                        " via the tie rule"
                    } else {
                        " (majority of LL tops)"
                    }
                ),
            ),
            TraceEvent::UpdateAcked {
                agent,
                node,
                positive,
            } => (
                *agent,
                format!(
                    "server {node} {} its UPDATE",
                    if *positive { "acknowledged" } else { "REFUSED" }
                ),
            ),
            TraceEvent::WinAborted { agent } => {
                (*agent, "claim aborted — back to gathering".to_string())
            }
            TraceEvent::AgentDisposed { agent, .. } => {
                (*agent, "committed and disposed".to_string())
            }
            _ => continue,
        };
        journeys
            .entry(agent)
            .or_default()
            .push(format!("  {:>10}  {line}", record.at.to_string()));
    }

    for (agent, lines) in &journeys {
        let (home, seq) = agent_key_parts(*agent);
        println!("=== agent {agent:#x} (home server {home}, #{seq}) ===");
        for line in lines {
            println!("{line}");
        }
        println!();
    }

    audit(sim.trace(), n).assert_ok();
    println!(
        "All three updates serialized into one global order (audit clean).\n\
         Note how losers park after visiting every server and win later,\n\
         notified when the previous winner's COMMIT removed its lock entries."
    );

    match obs.write(sim.trace()) {
        Ok(lines) => {
            for line in lines {
                eprintln!("{line}");
            }
        }
        Err(err) => eprintln!("observability output failed: {err}"),
    }
}
