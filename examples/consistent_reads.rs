//! Consistent reads via read agents — the §5 "generic method" extension.
//!
//! MARP's plain reads are local and may lag the latest commit; the
//! `ReadFresh` operation dispatches a *read agent* that travels a
//! majority of replicas and returns the freshest value, giving clients a
//! per-operation choice between latency and freshness. This example
//! measures all three access paths side by side on one cluster.
//!
//! Run with: `cargo run --release --example consistent_reads`

use marp_lab::{run_scenario, ProtocolKind, Scenario};
use marp_metrics::{fmt_ms, Table};
use marp_workload::KeyDist;

fn main() {
    let mut table = Table::new(
        "Read paths on a 5-replica LAN (10% writes)",
        &[
            "access path",
            "read p50 (ms)",
            "read mean (ms)",
            "guarantee",
        ],
    );
    for (label, fresh, guarantee) in [
        ("local read (paper)", false, "may lag in-flight commits"),
        ("read agent (majority)", true, "sees every completed write"),
    ] {
        let mut scenario = Scenario::paper(5, 25.0, 7).with_protocol(ProtocolKind::marp());
        scenario.write_fraction = 0.10;
        scenario.fresh_reads = fresh;
        scenario.keys = KeyDist::Uniform { keys: 8 };
        scenario.requests_per_client = 60;
        let outcome = run_scenario(&scenario);
        outcome.audit.assert_ok();
        let mut reads = outcome.client_read_ms.clone();
        table.row(vec![
            label.to_string(),
            fmt_ms(reads.quantile(0.5)),
            fmt_ms(reads.mean()),
            guarantee.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The read agent pays ~ceil((N+1)/2) migrations instead of one local\n\
         lookup; both paths run on the same agent runtime — the protocol is\n\
         the agent's behaviour, exactly the genericity the paper claims."
    );
}
