//! Protocol shoot-out: MARP vs every message-passing baseline on the
//! identical cluster and workload.
//!
//! Five replicas, one write-heavy client per server, a 1990s LAN — the
//! paper's prototype environment. For each protocol the example reports
//! update latency, message and byte cost per update, and whether the
//! consistency audit passed.
//!
//! Run with: `cargo run --release --example protocol_comparison`

use marp_lab::{run_scenario, ProtocolKind, Scenario};
use marp_metrics::{fmt_ms, Table};

fn main() {
    let protocols = [
        ProtocolKind::marp(),
        ProtocolKind::Mcv,
        ProtocolKind::AvailableCopy,
        ProtocolKind::WeightedVoting {
            read_one_write_all: false,
        },
        ProtocolKind::PrimaryCopy,
    ];
    let mut table = Table::new(
        "Five protocols, same cluster (N = 5, mean arrival 20 ms, write-only)",
        &[
            "protocol",
            "ATT (ms)",
            "updates",
            "msgs/update",
            "bytes/update",
            "audit",
        ],
    );
    for protocol in protocols {
        let label = protocol.label();
        let mut scenario = Scenario::paper(5, 20.0, 99).with_protocol(protocol);
        scenario.requests_per_client = 30;
        let outcome = run_scenario(&scenario);
        let completed = outcome.metrics.completed.max(1);
        table.row(vec![
            label.to_string(),
            fmt_ms(outcome.metrics.mean_att_ms()),
            outcome.metrics.completed.to_string(),
            format!(
                "{:.1}",
                outcome.stats.messages_sent as f64 / completed as f64
            ),
            format!("{:.0}", outcome.stats.bytes_sent as f64 / completed as f64),
            if outcome.audit.ok() {
                "clean"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
        outcome.audit.assert_ok();
    }
    println!("{}", table.render());
    println!(
        "Notes: AC is cheapest but only eventually consistent (LWW) and\n\
         partition-unsafe; PC is cheap but stalls if the primary dies;\n\
         MARP and MCV both guarantee one globally ordered update stream —\n\
         MARP pays migrations instead of vote rounds."
    );
}
