//! Model checking: exhaustively explore a small MARP cluster.
//!
//! Where the other examples run *one* schedule, this one runs them
//! all: every order in which messages can be delivered (and timers
//! fire) for a 3-replica MARP deployment with two concurrent writers,
//! bounded by a CHESS-style preemption budget. The paper's invariants
//! — single writer per version, in-order application, the Theorem 3
//! visit bounds, and no lost updates — are checked at every
//! intermediate state, not just at the end of the run.
//!
//! Run with: `cargo run --example model_check`

use marp_mcheck::{CheckConfig, Explorer, Family, ModelSpec};

fn main() {
    let spec = ModelSpec::new(Family::Marp, 3, 2);
    let cfg = CheckConfig::default();
    println!(
        "exploring marp: {} replicas, {} concurrent writers, preemption bound {:?}",
        spec.replicas, spec.agents, cfg.preemption_bound
    );

    let report = Explorer::new(spec, cfg).run();

    println!("states explored      : {}", report.transitions);
    println!("maximal paths        : {}", report.paths);
    println!("  clean terminal     : {}", report.terminal_paths);
    println!("  timer-budgeted     : {}", report.stuck_paths);
    println!("deepest interleaving : {} events", report.max_depth_seen);
    println!(
        "bounded space        : {}",
        if report.complete {
            "fully explored"
        } else {
            "budget exhausted first"
        }
    );
    match report.violation {
        None => println!("verdict              : all invariants hold on every path"),
        Some(cx) => {
            println!(
                "verdict              : VIOLATION after {} steps",
                cx.schedule.len()
            );
            for v in &cx.violations {
                println!("  {}: {}", v.rule, v.detail);
            }
        }
    }
}
