//! Quickstart: a 5-replica MARP cluster serving one client.
//!
//! Builds the paper's system — five agent-enabled replica servers on a
//! LAN — sends a handful of writes and reads through it, and prints the
//! protocol timeline an update agent produces.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--trace-out run.bin` / `--metrics-out run.csv` to record the
//! run for `marp-trace` (export, journey, critical-path, ...).

use marp_core::{build_cluster, wrap_client_request, MarpConfig, MarpNode};
use marp_metrics::{audit, PaperMetrics};
use marp_net::{LinkModel, SimTransport, Topology};
use marp_replica::{ClientProcess, Operation, ScriptedSource};
use marp_sim::{SimRng, SimTime, Simulation, TraceEvent, TraceLevel};
use std::time::Duration;

fn main() {
    let obs = marp_obs::ObsOptions::from_env();
    let n = 5;
    // One extra node for the client.
    let topo = Topology::uniform_lan(n + 1, Duration::from_millis(2));
    let transport = SimTransport::new(topo.clone(), LinkModel::lan_1990s(), SimRng::from_seed(42));
    let mut sim = Simulation::new(Box::new(transport), TraceLevel::Protocol);

    // The replicated servers (nodes 0..5).
    let cfg = MarpConfig::new(n);
    build_cluster(&mut sim, &cfg, &topo);

    // A client attached to server 0: three writes, then a read.
    let script = ScriptedSource::new([
        (
            Duration::from_millis(5),
            Operation::Write { key: 1, value: 10 },
        ),
        (
            Duration::from_millis(5),
            Operation::Write { key: 2, value: 20 },
        ),
        (
            Duration::from_millis(5),
            Operation::Write { key: 1, value: 11 },
        ),
        (Duration::from_millis(200), Operation::Read { key: 1 }),
    ]);
    let client = sim.add_process(Box::new(ClientProcess::new(
        0,
        Box::new(script),
        wrap_client_request,
    )));

    sim.run_until(SimTime::from_secs(5));

    // --- What happened? ---
    println!("=== protocol timeline (agent events) ===");
    for record in sim.trace().records() {
        match &record.event {
            TraceEvent::AgentDispatched { agent, home, batch } => {
                println!(
                    "{:>10}  server {home} dispatched agent {agent:#x} carrying {batch} write(s)",
                    record.at.to_string()
                );
            }
            TraceEvent::AgentMigrated {
                agent,
                from,
                to,
                hops,
            } => {
                println!(
                    "{:>10}  agent {agent:#x} migrated {from} -> {to} (hop {hops})",
                    record.at.to_string()
                );
            }
            TraceEvent::LockGranted {
                agent,
                visits,
                via_tie,
                ..
            } => {
                println!(
                    "{:>10}  agent {agent:#x} won the distributed lock after visiting {visits} servers{}",
                    record.at.to_string(),
                    if *via_tie { " (tie rule)" } else { "" }
                );
            }
            TraceEvent::CommitApplied {
                node, version, key, ..
            } => {
                println!(
                    "{:>10}  server {node} applied version {version} (key {key})",
                    record.at.to_string()
                );
            }
            _ => {}
        }
    }

    // Every replica holds the same data.
    println!("\n=== final replica state ===");
    for server in 0..n as u16 {
        let node = sim.process::<MarpNode>(server).unwrap();
        let store = &node.state().core.store;
        println!(
            "server {server}: version {}  key1={:?}  key2={:?}",
            store.applied_version(),
            store.get(1).map(|s| s.value),
            store.get(2).map(|s| s.value),
        );
        assert_eq!(store.get(1).map(|s| s.value), Some(11));
        assert_eq!(store.get(2).map(|s| s.value), Some(20));
    }

    // Client-side view.
    let client_proc = sim.process::<ClientProcess>(client).unwrap();
    println!("\n=== client view ===");
    println!(
        "writes completed: {} (mean {:.2} ms) — read latency {:.2} ms (local read)",
        client_proc.stats.write_latencies.len(),
        client_proc.stats.mean_write_ms().unwrap(),
        client_proc.stats.mean_read_ms().unwrap(),
    );

    // Machine-checked consistency.
    let metrics = PaperMetrics::from_trace(sim.trace());
    let report = audit(sim.trace(), n);
    report.assert_ok();
    println!(
        "\naudit: clean ({} versions committed, {} lock grants, ALT {:.2} ms, ATT {:.2} ms)",
        report.committed_versions,
        report.lock_grants,
        metrics.mean_alt_ms().unwrap(),
        metrics.mean_att_ms().unwrap(),
    );

    match obs.write(sim.trace()) {
        Ok(lines) => {
            for line in lines {
                eprintln!("{line}");
            }
        }
        Err(err) => eprintln!("observability output failed: {err}"),
    }
}
