//! Internet-scale replication: the deployment the paper motivates.
//!
//! Six replicas spread across two continents (a clustered WAN), serving
//! a read-dominated workload — the scenario where MARP's local reads
//! and travelling-agent updates are designed to shine. The example
//! contrasts MARP with message-passing majority consensus voting on the
//! identical topology and workload.
//!
//! Run with: `cargo run --release --example internet_replicas`

use marp_lab::{run_scenario, LinkKind, ProtocolKind, Scenario, TopologyKind};
use marp_metrics::{fmt_ms, Table};
use marp_workload::KeyDist;

fn scenario(protocol: ProtocolKind) -> Scenario {
    let mut s = Scenario::paper(6, 25.0, 2026).with_protocol(protocol);
    s.topology = TopologyKind::Wan {
        clusters: 2,
        intra_ms: 2.0,
        inter_ms: 70.0, // transatlantic
    };
    s.link = LinkKind::Wan;
    s.write_fraction = 0.10; // read-dominated, as the paper assumes
    s.keys = KeyDist::Zipf { keys: 64, s: 0.9 };
    s.requests_per_client = 80;
    s
}

fn main() {
    let mut table = Table::new(
        "Two-continent deployment, 90% reads (N = 6)",
        &[
            "protocol",
            "read mean (ms)",
            "write mean (ms)",
            "updates",
            "msgs total",
        ],
    );
    for protocol in [ProtocolKind::marp(), ProtocolKind::Mcv] {
        let label = protocol.label();
        let outcome = run_scenario(&scenario(protocol));
        outcome.audit.assert_ok();
        table.row(vec![
            label.to_string(),
            fmt_ms(outcome.client_read_ms.clone().mean()),
            fmt_ms(outcome.client_write_ms.clone().mean()),
            outcome.metrics.completed.to_string(),
            outcome.stats.messages_sent.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reads are served by the nearby replica in both protocols (read-one);\n\
         updates pay the ocean crossing — the agent carries the conversation\n\
         across once per server instead of running multi-round message\n\
         exchanges over the long links."
    );
}
